// Batched "polar as a service" front end over the work-stealing engine.
//
// The paper's setting is one large polar decomposition at a time; a
// production deployment amortizes the machine across MANY independent
// problems. PolarService turns the engine into exactly that: callers admit
// JobSpecs from any thread, a single dispatcher thread — the engine's one
// submitter — turns each admission into one coarse engine task, and the
// engine's per-worker priority deques provide the QoS split (Latency jobs
// ride the high lane past any depth of Bulk backlog; ServiceOptions::fifo
// collapses both classes onto one lane for A/B baselines).
//
// Isolation invariants:
//   - every job computes on its own private sequential engine, so outputs
//     are bitwise reproducible functions of the JobSpec;
//   - every job stages outputs in its own pooled workspace (arena.hh), so
//     concurrent jobs never share scratch;
//   - every job runs under its own engine JobId, so an exception poisons
//     only that job's latch — one failing job becomes a JobResult error
//     and every other job in the batch completes (engine.hh).

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/engine.hh"
#include "service/arena.hh"
#include "service/job.hh"
#include "service/providers.hh"
#include "service/registry.hh"

namespace tbp::svc {

/// Per-job retry and degradation policy. Defaults preserve the pre-fault
/// behavior exactly: one attempt, no failover re-dispatch (failover only
/// fires for DistQdwh jobs, so local-only deployments never see it).
struct RetryPolicy {
    /// Provider executions per job (JobSpec::max_attempts overrides).
    int max_attempts = 1;
    double backoff_ms = 1.0;    ///< sleep before the second attempt
    double backoff_mult = 2.0;  ///< multiplier per further attempt
    /// Graceful degradation: after a DistQdwh job exhausts its attempts on
    /// retryable errors, re-dispatch it once to the single-rank Qdwh
    /// provider (no network, no fault plan).
    bool failover = true;
};

struct ServiceOptions {
    /// Ignore QoS classes and run everything at one priority (the FIFO
    /// baseline the throughput bench A/Bs against).
    bool fifo = false;
    /// Engine priority of the Latency class (Bulk is always 0).
    int latency_priority = 1;
    RetryPolicy retry;
};

struct ServiceStats {
    std::uint64_t admitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;  ///< completed with status != Ok
    std::uint64_t admitted_latency = 0;
    std::uint64_t admitted_bulk = 0;
    std::uint64_t dispatched = 0;    ///< handed to the engine so far
    std::uint64_t retried_jobs = 0;  ///< jobs needing > 1 attempt/failover
    std::uint64_t recovered_jobs = 0;  ///< retried jobs that ended Ok
    std::uint64_t failed_over = 0;     ///< jobs re-dispatched to Qdwh
    std::size_t workspaces_created = 0;  ///< flat once the pool is warm
};

/// Liveness snapshot for operators: is the dispatcher making progress, and
/// how much recovery work has the service been doing. Heartbeats advance
/// once per dispatcher admission cycle, so a wedged dispatcher shows up as
/// a stale heartbeat with queued > 0.
struct HealthReport {
    bool dispatcher_alive = false;  ///< thread running and not stopping
    std::uint64_t heartbeats = 0;   ///< dispatcher admission cycles
    double heartbeat_age = 0;  ///< seconds since the dispatcher last moved
    std::uint64_t queued = 0;     ///< admitted, not yet dispatched
    std::uint64_t in_flight = 0;  ///< dispatched, not yet completed
    std::uint64_t retried_jobs = 0;
    std::uint64_t recovered_jobs = 0;
    std::uint64_t failed_over = 0;
};

namespace detail {
struct JobState {
    JobSpec spec;
    JobResult result;
    std::shared_ptr<Workspace> ws;
    rt::JobId ejob = rt::kAmbientJob;

    mutable std::mutex mtx;
    mutable std::condition_variable cv;
    bool done = false;
};
}  // namespace detail

/// Caller-side view of one admitted job. result() blocks until the job
/// completes. Output bytes stay valid while the handle (or a copy) lives;
/// destruction returns the workspace to the pool.
class JobHandle {
public:
    JobHandle() = default;

    bool valid() const { return st_ != nullptr; }

    bool done() const {
        std::lock_guard<std::mutex> lk(st_->mtx);
        return st_->done;
    }

    JobResult const& result() const {
        std::unique_lock<std::mutex> lk(st_->mtx);
        st_->cv.wait(lk, [this] { return st_->done; });
        return st_->result;
    }

    /// Staged output bytes (dense column-major); call after result().
    std::byte const* output(Workspace::Slot slot) const {
        return st_->ws->data(slot);
    }
    std::size_t output_bytes(Workspace::Slot slot) const {
        return st_->ws->used(slot);
    }

private:
    friend class PolarService;
    explicit JobHandle(std::shared_ptr<detail::JobState> st)
        : st_(std::move(st)) {}
    std::shared_ptr<detail::JobState> st_;
};

class PolarService {
public:
    /// Serve jobs on `eng` with the built-in provider registry.
    explicit PolarService(rt::Engine& eng, ServiceOptions opts = {});
    /// Custom registry (tests register failing/fake providers this way).
    PolarService(rt::Engine& eng, ProviderRegistry reg,
                 ServiceOptions opts = {});
    /// Drains outstanding jobs, then stops the dispatcher.
    ~PolarService();

    PolarService(PolarService const&) = delete;
    PolarService& operator=(PolarService const&) = delete;

    /// Admit a job; thread-safe, returns immediately.
    JobHandle submit(JobSpec spec);

    /// Block until every job admitted so far has completed, then claim the
    /// engine-side error latches of failed jobs. Never calls Engine::wait()
    /// (the ambient job belongs to the engine's owner, and the dispatcher
    /// must stay the engine's only submitter).
    void wait_all();

    ServiceStats stats() const;

    /// Liveness/recovery snapshot; thread-safe, never blocks on jobs.
    HealthReport health() const;

private:
    void dispatcher_loop();
    void run_job(std::shared_ptr<detail::JobState> const& st);

    /// One provider execution: validate + dispatch. Throws whatever the
    /// provider throws; the retry loop in run_job owns the policy.
    void run_attempt(JobSpec const& spec, detail::JobState& st,
                     JobResult& res);

    rt::Engine& eng_;
    ProviderRegistry registry_;
    ServiceOptions opts_;
    std::shared_ptr<WorkspacePool> pool_;

    mutable std::mutex mtx_;
    std::condition_variable admit_cv_;  ///< dispatcher: new work / stop
    std::condition_variable done_cv_;   ///< wait_all: completion progress
    std::deque<std::shared_ptr<detail::JobState>> queue_;
    std::vector<rt::JobId> poisoned_;  ///< ejobs with latched errors
    ServiceStats stats_;
    std::uint64_t next_id_ = 1;
    bool stop_ = false;

    // Dispatcher heartbeat (guarded by mtx_): bumped once per admission
    // cycle so health() can distinguish "idle" from "wedged".
    std::uint64_t heartbeats_ = 0;
    double last_heartbeat_ = 0;
    bool dispatcher_alive_ = false;

    std::thread dispatcher_;
};

}  // namespace tbp::svc
