#include "service/service.hh"

#include "common/error.hh"
#include "common/timer.hh"

namespace tbp::svc {

PolarService::PolarService(rt::Engine& eng, ServiceOptions opts)
    : PolarService(eng, ProviderRegistry::builtin(), opts) {}

PolarService::PolarService(rt::Engine& eng, ProviderRegistry reg,
                           ServiceOptions opts)
    : eng_(eng),
      registry_(std::move(reg)),
      opts_(opts),
      pool_(WorkspacePool::make()),
      dispatcher_([this] { dispatcher_loop(); }) {}

PolarService::~PolarService() {
    wait_all();
    {
        std::lock_guard<std::mutex> lk(mtx_);
        stop_ = true;
    }
    admit_cv_.notify_all();
    dispatcher_.join();
}

JobHandle PolarService::submit(JobSpec spec) {
    auto st = std::make_shared<detail::JobState>();
    st->spec = spec;
    st->result.kind = spec.kind;
    st->result.cls = spec.cls;
    st->result.t_submit = wall_time();
    {
        std::lock_guard<std::mutex> lk(mtx_);
        st->result.id = next_id_++;
        ++stats_.admitted;
        if (spec.cls == JobClass::Latency)
            ++stats_.admitted_latency;
        else
            ++stats_.admitted_bulk;
        queue_.push_back(st);
    }
    admit_cv_.notify_one();
    return JobHandle(st);
}

void PolarService::wait_all() {
    std::vector<rt::JobId> claim;
    {
        std::unique_lock<std::mutex> lk(mtx_);
        done_cv_.wait(lk, [this] {
            return stats_.completed == stats_.admitted;
        });
        claim.swap(poisoned_);
    }
    // Claim the per-job error latches so the engine's job-error map stays
    // empty; the exceptions were already transcribed into JobResults.
    for (rt::JobId j : claim)
        (void)eng_.take_job_error(j);
}

ServiceStats PolarService::stats() const {
    std::lock_guard<std::mutex> lk(mtx_);
    ServiceStats s = stats_;
    s.workspaces_created = pool_->created();
    return s;
}

// Sole submitter of eng_: pops admissions and turns each into one coarse
// engine task. The QoS split happens here — Latency jobs enter the high
// priority lane, Bulk the normal lane (or both at 0 in fifo mode).
void PolarService::dispatcher_loop() {
    for (;;) {
        std::shared_ptr<detail::JobState> st;
        {
            std::unique_lock<std::mutex> lk(mtx_);
            admit_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return;  // stop_ and drained
            st = std::move(queue_.front());
            queue_.pop_front();
        }
        st->ejob = eng_.new_job();
        int const prio =
            (!opts_.fifo && st->spec.cls == JobClass::Latency)
                ? opts_.latency_priority
                : 0;
        // Each job writes only its own state: no inter-job dependencies,
        // so the engine is free to run any mix of jobs concurrently.
        eng_.submit("svc_job", {rt::write(st.get())},
                    [this, st] { run_job(st); }, prio, st->ejob);
    }
}

// Body of one job, executed on an engine worker. Catches everything: a
// failing provider becomes a JobResult error plus a poisoned per-job latch,
// never an escaped exception that would poison unrelated jobs.
void PolarService::run_job(std::shared_ptr<detail::JobState> const& st) {
    JobResult& res = st->result;
    res.t_start = wall_time();
    // Checked out here, not at dispatch: a queued backlog of thousands of
    // jobs must not pin thousands of arenas. The pool's steady state is
    // one workspace per concurrently *running* job.
    st->ws = pool_->checkout();
    bool poisoned = false;
    try {
        Status const v = validate(st->spec);
        if (v != Status::Ok) {
            res.status = v;
            res.error = std::string(job_kind_name(st->spec.kind))
                        + ": invalid job spec";
        } else if (auto const* p = registry_.find(st->spec.kind)) {
            // Private sequential engine: tasks run inline on this worker,
            // and the job's outputs depend only on its spec.
            rt::Engine jeng(1, rt::Mode::Sequential);
            (*p)(jeng, st->spec, *st->ws, res);
        } else {
            res.status = Status::InvalidArgument;
            res.error = std::string(job_kind_name(st->spec.kind))
                        + ": no provider registered";
        }
    } catch (Error const& e) {
        res.status = Status::NumericalError;
        res.error = e.what();
        eng_.poison_job(st->ejob, std::current_exception());
        poisoned = true;
    } catch (std::exception const& e) {
        res.status = Status::InternalError;
        res.error = e.what();
        eng_.poison_job(st->ejob, std::current_exception());
        poisoned = true;
    } catch (...) {
        res.status = Status::InternalError;
        res.error = "unknown exception";
        eng_.poison_job(st->ejob, std::current_exception());
        poisoned = true;
    }
    res.t_end = wall_time();

    {
        std::lock_guard<std::mutex> lk(mtx_);
        ++stats_.completed;
        if (res.status != Status::Ok)
            ++stats_.failed;
        if (poisoned)
            poisoned_.push_back(st->ejob);
        // Notify under the lock: wait_all() may return (and the service
        // may be destroyed) the instant the predicate holds, so the cv
        // must not be touched after the mutex is released.
        done_cv_.notify_all();
    }
    {
        std::lock_guard<std::mutex> lk(st->mtx);
        st->done = true;
    }
    st->cv.notify_all();
}

}  // namespace tbp::svc
