#include "service/service.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "comm/comm_error.hh"
#include "common/error.hh"
#include "common/timer.hh"

namespace tbp::svc {

PolarService::PolarService(rt::Engine& eng, ServiceOptions opts)
    : PolarService(eng, ProviderRegistry::builtin(), opts) {}

PolarService::PolarService(rt::Engine& eng, ProviderRegistry reg,
                           ServiceOptions opts)
    : eng_(eng),
      registry_(std::move(reg)),
      opts_(opts),
      pool_(WorkspacePool::make()),
      dispatcher_([this] { dispatcher_loop(); }) {}

PolarService::~PolarService() {
    wait_all();
    {
        std::lock_guard<std::mutex> lk(mtx_);
        stop_ = true;
    }
    admit_cv_.notify_all();
    dispatcher_.join();
}

JobHandle PolarService::submit(JobSpec spec) {
    auto st = std::make_shared<detail::JobState>();
    st->spec = spec;
    st->result.kind = spec.kind;
    st->result.cls = spec.cls;
    st->result.t_submit = wall_time();
    {
        std::lock_guard<std::mutex> lk(mtx_);
        st->result.id = next_id_++;
        ++stats_.admitted;
        if (spec.cls == JobClass::Latency)
            ++stats_.admitted_latency;
        else
            ++stats_.admitted_bulk;
        queue_.push_back(st);
    }
    admit_cv_.notify_one();
    return JobHandle(st);
}

void PolarService::wait_all() {
    std::vector<rt::JobId> claim;
    {
        std::unique_lock<std::mutex> lk(mtx_);
        done_cv_.wait(lk, [this] {
            return stats_.completed == stats_.admitted;
        });
        claim.swap(poisoned_);
    }
    // Claim the per-job error latches so the engine's job-error map stays
    // empty; the exceptions were already transcribed into JobResults.
    for (rt::JobId j : claim)
        (void)eng_.take_job_error(j);
}

ServiceStats PolarService::stats() const {
    std::lock_guard<std::mutex> lk(mtx_);
    ServiceStats s = stats_;
    s.workspaces_created = pool_->created();
    return s;
}

HealthReport PolarService::health() const {
    std::lock_guard<std::mutex> lk(mtx_);
    HealthReport h;
    h.dispatcher_alive = dispatcher_alive_ && !stop_;
    h.heartbeats = heartbeats_;
    h.heartbeat_age =
        heartbeats_ == 0 ? 0 : wall_time() - last_heartbeat_;
    h.queued = queue_.size();
    h.in_flight = stats_.dispatched - stats_.completed;
    h.retried_jobs = stats_.retried_jobs;
    h.recovered_jobs = stats_.recovered_jobs;
    h.failed_over = stats_.failed_over;
    return h;
}

// Sole submitter of eng_: pops admissions and turns each into one coarse
// engine task. The QoS split happens here — Latency jobs enter the high
// priority lane, Bulk the normal lane (or both at 0 in fifo mode).
void PolarService::dispatcher_loop() {
    {
        std::lock_guard<std::mutex> lk(mtx_);
        dispatcher_alive_ = true;
        last_heartbeat_ = wall_time();
    }
    for (;;) {
        std::shared_ptr<detail::JobState> st;
        {
            std::unique_lock<std::mutex> lk(mtx_);
            admit_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
            ++heartbeats_;
            last_heartbeat_ = wall_time();
            if (queue_.empty()) {
                dispatcher_alive_ = false;
                return;  // stop_ and drained
            }
            st = std::move(queue_.front());
            queue_.pop_front();
            ++stats_.dispatched;
        }
        st->ejob = eng_.new_job();
        int const prio =
            (!opts_.fifo && st->spec.cls == JobClass::Latency)
                ? opts_.latency_priority
                : 0;
        // Each job writes only its own state: no inter-job dependencies,
        // so the engine is free to run any mix of jobs concurrently.
        eng_.submit("svc_job", {rt::write(st.get())},
                    [this, st] { run_job(st); }, prio, st->ejob);
    }
}

void PolarService::run_attempt(JobSpec const& spec, detail::JobState& st,
                               JobResult& res) {
    Status const v = validate(spec);
    if (v != Status::Ok) {
        res.status = v;
        res.error = std::string(job_kind_name(spec.kind))
                    + ": invalid job spec";
    } else if (auto const* p = registry_.find(spec.kind)) {
        // Private sequential engine: tasks run inline on this worker, and
        // the job's outputs depend only on its spec.
        rt::Engine jeng(1, rt::Mode::Sequential);
        (*p)(jeng, spec, *st.ws, res);
    } else {
        res.status = Status::InvalidArgument;
        res.error = std::string(job_kind_name(spec.kind))
                    + ": no provider registered";
    }
}

// Body of one job, executed on an engine worker. Catches everything: a
// failing provider becomes a JobResult error plus a poisoned per-job latch,
// never an escaped exception that would poison unrelated jobs. The retry
// policy lives here: retryable failures (comm faults, numerical failures)
// re-run the provider with backoff up to the attempt budget; a DistQdwh job
// that exhausts its budget degrades once to the single-rank Qdwh provider.
void PolarService::run_job(std::shared_ptr<detail::JobState> const& st) {
    JobResult& res = st->result;
    res.t_start = wall_time();
    // Checked out here, not at dispatch: a queued backlog of thousands of
    // jobs must not pin thousands of arenas. The pool's steady state is
    // one workspace per concurrently *running* job.
    st->ws = pool_->checkout();

    JobSpec spec = st->spec;
    int budget = std::max(
        1, spec.max_attempts > 0 ? spec.max_attempts
                                 : opts_.retry.max_attempts);
    bool failed_over = false;
    std::exception_ptr last_exc;
    double backoff_ms = opts_.retry.backoff_ms;
    int attempt = 0;

    for (;;) {
        ++attempt;
        res.attempts = attempt;
        res.status = Status::InternalError;
        res.error.clear();
        last_exc = nullptr;
        try {
            run_attempt(spec, *st, res);
        } catch (comm::CommError const& e) {
            // Transport-level failure the p2p recovery could not absorb
            // (retry budget spent, dead peer): an infrastructure error,
            // not a numerical one.
            res.status = Status::InternalError;
            res.error = e.what();
            last_exc = std::current_exception();
        } catch (comm::RankFailedError const& e) {
            res.status = Status::InternalError;
            res.error = e.what();
            last_exc = std::current_exception();
        } catch (Error const& e) {
            res.status = Status::NumericalError;
            res.error = e.what();
            last_exc = std::current_exception();
        } catch (std::exception const& e) {
            res.status = Status::InternalError;
            res.error = e.what();
            last_exc = std::current_exception();
        } catch (...) {
            res.status = Status::InternalError;
            res.error = "unknown exception";
            last_exc = std::current_exception();
        }

        if (res.ok())
            break;
        bool const retryable = res.status == Status::InternalError
                               || res.status == Status::NumericalError;
        if (!retryable)
            break;
        if (attempt < budget) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(backoff_ms / 1e3));
            backoff_ms *= opts_.retry.backoff_mult;
            continue;
        }
        // Budget exhausted. Graceful degradation: a distributed job whose
        // World keeps failing is worth one shot on the single-rank
        // provider — same spec-derived input and solver family, no
        // network to fault.
        if (!failed_over && opts_.retry.failover
            && spec.kind == JobKind::DistQdwh) {
            failed_over = true;
            spec.kind = JobKind::Qdwh;
            spec.fault = fault::FaultPlan{};
            budget = attempt + 1;
            continue;
        }
        break;
    }

    res.failed_over = failed_over;
    res.recovered = res.ok() && (res.attempts > 1 || failed_over);
    bool poisoned = false;
    if (!res.ok() && last_exc) {
        eng_.poison_job(st->ejob, last_exc);
        poisoned = true;
    }
    res.t_end = wall_time();

    {
        std::lock_guard<std::mutex> lk(mtx_);
        ++stats_.completed;
        if (res.status != Status::Ok)
            ++stats_.failed;
        if (res.attempts > 1 || failed_over)
            ++stats_.retried_jobs;
        if (res.recovered)
            ++stats_.recovered_jobs;
        if (failed_over)
            ++stats_.failed_over;
        if (poisoned)
            poisoned_.push_back(st->ejob);
        // Notify under the lock: wait_all() may return (and the service
        // may be destroyed) the instant the predicate holds, so the cv
        // must not be touched after the mutex is released.
        done_cv_.notify_all();
    }
    {
        std::lock_guard<std::mutex> lk(st->mtx);
        st->done = true;
    }
    st->cv.notify_all();
}

}  // namespace tbp::svc
