// Per-job workspace arenas for the service layer, reusing the pack-arena
// idiom of blas/kernel/arena.hh: named slots, monotonic growth, no
// per-request allocation once warm. Where the kernel arena is thread-local,
// these are pooled — a job checks a workspace out for its lifetime, so
// concurrent jobs never share scratch, and completed jobs return their
// (already-grown) buffers for the next admission to reuse.
//
// The slots hold the dense column-major staging copies of a job's outputs.
// Tiled iteration workspaces live inside the solver call; what must outlive
// it — the bytes the oracle comparison and the caller read — lives here.

#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "common/error.hh"

namespace tbp::svc {

class Workspace {
public:
    /// Output staging slots; grow monotonically, reused across checkouts.
    enum Slot {
        OutU = 0,  ///< primary output (U_p, the posv solution, explicit Q)
        OutH,      ///< secondary output (the Hermitian factor H)
        Scratch,   ///< provider-private staging
        kNumSlots,
    };

    /// Bytes for `slot`, growing the slot if needed. Previous contents of
    /// the slot are unspecified after a grow.
    std::byte* get(Slot slot, std::size_t bytes) {
        auto& v = slots_[slot];
        if (v.size() < bytes)
            v.resize(bytes);
        used_[slot] = bytes;
        return v.data();
    }

    template <typename E>
    E* get_as(Slot slot, std::size_t count) {
        static_assert(alignof(E) <= alignof(std::max_align_t));
        return reinterpret_cast<E*>(get(slot, count * sizeof(E)));
    }

    std::byte const* data(Slot slot) const { return slots_[slot].data(); }

    /// Bytes the current job requested in `slot` (0 if untouched).
    std::size_t used(Slot slot) const { return used_[slot]; }

    /// High-water capacity across all slots (pool reuse diagnostics).
    std::size_t capacity() const {
        std::size_t c = 0;
        for (auto const& v : slots_)
            c += v.size();
        return c;
    }

    /// New checkout: forget the previous job's sizes, keep the capacity.
    void reset() {
        for (auto& u : used_)
            u = 0;
    }

private:
    std::vector<std::byte> slots_[kNumSlots];
    std::size_t used_[kNumSlots] = {};
};

/// Thread-safe free-list of workspaces. checkout() hands back a
/// shared_ptr whose deleter returns the workspace to the pool — and keeps
/// the pool itself alive — so a JobHandle can hold its outputs past
/// service shutdown and the buffers still recycle on destruction.
class WorkspacePool : public std::enable_shared_from_this<WorkspacePool> {
public:
    static std::shared_ptr<WorkspacePool> make() {
        return std::shared_ptr<WorkspacePool>(new WorkspacePool());
    }

    std::shared_ptr<Workspace> checkout() {
        std::unique_ptr<Workspace> ws;
        {
            std::lock_guard<std::mutex> lk(mtx_);
            if (!free_.empty()) {
                ws = std::move(free_.back());
                free_.pop_back();
            } else {
                ws = std::make_unique<Workspace>();
                ++created_;
            }
        }
        ws->reset();
        auto self = shared_from_this();
        return std::shared_ptr<Workspace>(
            ws.release(), [self](Workspace* w) { self->checkin(w); });
    }

    /// Workspaces ever constructed; a warm steady state stops growing this.
    std::size_t created() const {
        std::lock_guard<std::mutex> lk(mtx_);
        return created_;
    }

    /// Workspaces currently idle in the free list.
    std::size_t idle() const {
        std::lock_guard<std::mutex> lk(mtx_);
        return free_.size();
    }

private:
    WorkspacePool() = default;

    void checkin(Workspace* w) {
        std::lock_guard<std::mutex> lk(mtx_);
        free_.emplace_back(w);
    }

    mutable std::mutex mtx_;
    std::vector<std::unique_ptr<Workspace>> free_;
    std::size_t created_ = 0;
};

}  // namespace tbp::svc
