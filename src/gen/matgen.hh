// Synthetic test-matrix generation (paper Section 7.1).
//
// "The generator creates random unitary matrices U, V, obtained through the
// QR factorization of random matrices, and a diagonal matrix Sigma based on
// the desired condition number of the matrix A. It then multiplies these
// together, forming A = U Sigma V^H from its SVD."
//
// Entries of the Gaussian seeds are counter-based (common/rng.hh), so a
// given (m, n, seed) always produces the same matrix regardless of tiling,
// thread count, or task schedule.

#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "linalg/gemm.hh"
#include "linalg/geqrf.hh"
#include "linalg/util.hh"
#include "matrix/tiled_matrix.hh"
#include "runtime/engine.hh"

namespace tbp::gen {

/// Singular value profiles; sigma_max = 1, sigma_min = 1/cond in all cases.
enum class SigmaDist {
    Geometric,     ///< sigma_j = cond^(-j/(n-1)) — the default, worst case
    Arithmetic,    ///< evenly spaced in [1/cond, 1]
    ClusterAtOne,  ///< all 1 except sigma_{n-1} = 1/cond
    LogUniform,    ///< random, log-uniform in [1/cond, 1]
};

struct MatGenOptions {
    double cond = 1e16;  ///< target 2-norm condition number
    SigmaDist dist = SigmaDist::Geometric;
    std::uint64_t seed = 42;
};

/// The singular values the generator embeds, largest first.
template <typename R>
std::vector<R> sigma_values(std::int64_t n, MatGenOptions const& opt) {
    std::vector<R> s(static_cast<size_t>(n));
    R const smin = static_cast<R>(1.0 / opt.cond);
    CounterRng rng(opt.seed ^ 0x5157ULL);
    for (std::int64_t j = 0; j < n; ++j) {
        double const t = (n > 1) ? static_cast<double>(j) / static_cast<double>(n - 1) : 0.0;
        switch (opt.dist) {
            case SigmaDist::Geometric:
                s[static_cast<size_t>(j)] = static_cast<R>(std::pow(opt.cond, -t));
                break;
            case SigmaDist::Arithmetic:
                s[static_cast<size_t>(j)] =
                    static_cast<R>(1.0 - (1.0 - 1.0 / opt.cond) * t);
                break;
            case SigmaDist::ClusterAtOne:
                s[static_cast<size_t>(j)] = (j == n - 1) ? smin : R(1);
                break;
            case SigmaDist::LogUniform: {
                double u = rng.uniform(static_cast<std::uint64_t>(j));
                if (j == 0)
                    u = 0.0;  // pin sigma_max = 1
                else if (j == n - 1)
                    u = 1.0;  // pin sigma_min = 1/cond
                s[static_cast<size_t>(j)] =
                    static_cast<R>(std::pow(opt.cond, -u));
                break;
            }
        }
    }
    if (opt.dist == SigmaDist::LogUniform)
        std::sort(s.begin(), s.end(), std::greater<R>());
    return s;
}

/// Fill A with iid standard Gaussian entries (tile-parallel, reproducible).
template <typename T>
void fill_gaussian(rt::Engine& eng, TiledMatrix<T> A, std::uint64_t seed) {
    CounterRng const rng(seed);
    std::int64_t const m = A.m();
    std::int64_t row0 = 0;
    for (int i = 0; i < A.mt(); ++i) {
        std::int64_t col0 = 0;
        for (int j = 0; j < A.nt(); ++j) {
            eng.submit("gauss", {rt::write(A.tile_key(i, j))},
                       [A, i, j, row0, col0, m, rng] {
                           auto t = A.tile(i, j);
                           for (int c = 0; c < t.nb(); ++c)
                               for (int r = 0; r < t.mb(); ++r)
                                   t(r, c) = rng.gaussian<T>(static_cast<std::uint64_t>(
                                       (row0 + r) + (col0 + c) * m));
                       });
            col0 += A.tile_nb(j);
        }
        row0 += A.tile_mb(i);
    }
    eng.op_fence();
}

/// Scale column j of A by s[j] (A := A * diag(s)).
template <typename T>
void scale_cols(rt::Engine& eng, TiledMatrix<T> A,
                std::vector<real_t<T>> const& s) {
    tbp_require(static_cast<std::int64_t>(s.size()) == A.n());
    std::int64_t col0 = 0;
    for (int j = 0; j < A.nt(); ++j) {
        for (int i = 0; i < A.mt(); ++i) {
            eng.submit("scale_cols", {rt::readwrite(A.tile_key(i, j))},
                       [A, i, j, col0, &s] {
                           auto t = A.tile(i, j);
                           for (int c = 0; c < t.nb(); ++c) {
                               T const f = from_real<T>(s[static_cast<size_t>(col0 + c)]);
                               for (int r = 0; r < t.mb(); ++r)
                                   t(r, c) *= f;
                           }
                       });
        }
        col0 += A.tile_nb(j);
    }
    eng.wait();  // `s` is caller-owned; don't let tasks outlive it
}

/// Random matrix with orthonormal columns: Q from the QR factorization of a
/// Gaussian matrix (m >= n).
template <typename T>
TiledMatrix<T> random_orthonormal(rt::Engine& eng, std::int64_t m,
                                  std::int64_t n, int nb, std::uint64_t seed,
                                  Grid grid = {}) {
    tbp_require(m >= n);
    TiledMatrix<T> G(m, n, nb, grid);
    fill_gaussian(eng, G, seed);
    TiledMatrix<T> Tm = la::alloc_qr_t(G);
    la::geqrf(eng, G, Tm);
    TiledMatrix<T> Q(m, n, nb, grid);
    la::ungqr(eng, G, Tm, Q);
    eng.wait();
    return Q;
}

/// A = U Sigma V^H with the requested condition number and singular-value
/// profile. m >= n; A is m-by-n with tile size nb.
template <typename T>
TiledMatrix<T> cond_matrix(rt::Engine& eng, std::int64_t m, std::int64_t n,
                           int nb, MatGenOptions const& opt = {},
                           Grid grid = {}) {
    tbp_require(m >= n);
    auto sigma = sigma_values<real_t<T>>(n, opt);

    TiledMatrix<T> U = random_orthonormal<T>(eng, m, n, nb, opt.seed * 2 + 1, grid);
    TiledMatrix<T> V = random_orthonormal<T>(eng, n, n, nb, opt.seed * 2 + 2, grid);

    scale_cols(eng, U, sigma);  // U := U Sigma
    TiledMatrix<T> A(m, n, nb, grid);
    la::gemm(eng, Op::NoTrans, Op::ConjTrans, T(1), U, V, T(0), A);
    eng.wait();
    return A;
}

/// Random Hermitian positive definite matrix: B B^H + n I (for potrf tests).
template <typename T>
TiledMatrix<T> hpd_matrix(rt::Engine& eng, std::int64_t n, int nb,
                          std::uint64_t seed, Grid grid = {}) {
    TiledMatrix<T> B(n, n, nb, grid);
    fill_gaussian(eng, B, seed);
    TiledMatrix<T> A(n, n, nb, grid);
    la::set(eng, T(0), from_real<T>(static_cast<real_t<T>>(n)), A);
    la::herk(eng, Uplo::Lower, Op::NoTrans, real_t<T>(1), B, real_t<T>(1), A);
    // Mirror to the upper triangle so dense checks can use the whole matrix.
    eng.wait();
    for (std::int64_t j = 0; j < n; ++j)
        for (std::int64_t i = j + 1; i < n; ++i)
            A.at(j, i) = conj_val(A.at(i, j));
    return A;
}

}  // namespace tbp::gen
