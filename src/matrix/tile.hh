// Tile<T>: a non-owning view of an mb-by-nb column-major block.
//
// Tiles are the unit of work and of dependency tracking: every tile kernel
// in src/blas/ takes Tile arguments, and the runtime engine keys data
// dependencies on the tile's data pointer. Mirrors SLATE's Tile class in
// spirit (view semantics, column-major, leading dimension) without the
// device/layout machinery.

#pragma once

#include <cstdint>

#include "common/error.hh"
#include "common/types.hh"

namespace tbp {

template <typename T>
class Tile {
public:
    Tile() : data_(nullptr), mb_(0), nb_(0), ld_(0) {}

    Tile(T* data, int mb, int nb, int ld)
        : data_(data), mb_(mb), nb_(nb), ld_(ld) {
        tbp_require(mb >= 0 && nb >= 0 && ld >= mb);
    }

    int mb() const { return mb_; }  ///< rows
    int nb() const { return nb_; }  ///< columns
    int ld() const { return ld_; }  ///< leading dimension (column stride)

    T* data() const { return data_; }
    bool empty() const { return data_ == nullptr || mb_ == 0 || nb_ == 0; }

    /// Element access (column-major).
    T& operator()(int i, int j) const {
        return data_[i + static_cast<std::ptrdiff_t>(j) * ld_];
    }

    T& at(int i, int j) const {
        tbp_require(0 <= i && i < mb_ && 0 <= j && j < nb_);
        return (*this)(i, j);
    }

    /// Sub-view of rows [i0, i0+m) x columns [j0, j0+n).
    Tile sub(int i0, int j0, int m, int n) const {
        tbp_require(i0 >= 0 && j0 >= 0 && i0 + m <= mb_ && j0 + n <= nb_);
        return Tile(data_ + i0 + static_cast<std::ptrdiff_t>(j0) * ld_, m, n, ld_);
    }

private:
    T* data_;
    int mb_, nb_, ld_;
};

}  // namespace tbp
