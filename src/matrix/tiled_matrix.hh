// TiledMatrix<T>: an m-by-n matrix partitioned into tiles with a 2D
// block-cyclic ownership map over a p-by-q process grid — the data
// distribution SLATE (and ScaLAPACK) use (paper Sections 1, 5).
//
// Storage is shared (SLATE-style): sub() returns a view onto the same tiles,
// so algorithms can operate on trailing submatrices, panels, and the stacked
// [W1; W2] workspaces of QDWH without copies. Tile sizes may vary per block
// row/column, which lets the (m+n)-by-n stacked QDWH workspace keep A's tile
// boundaries in its top block rows even when m % nb != 0.
//
// The ownership map (owner_rank) is advisory on this shared-memory build:
// the task runtime executes tiles in place, while the communication volume
// implied by the map is charged by the performance model (src/perf/) and
// exercised for real by the src/comm/ virtual-rank kernels.

#pragma once

#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "common/aligned.hh"
#include "common/error.hh"
#include "common/types.hh"
#include "matrix/tile.hh"

namespace tbp {

/// p-by-q process grid for block-cyclic ownership.
struct Grid {
    int p = 1;
    int q = 1;
    int size() const { return p * q; }
};

template <typename T>
class TiledMatrix {
public:
    TiledMatrix() = default;

    /// Uniform tiling: tiles of nb-by-nb except the last block row/column.
    TiledMatrix(std::int64_t m, std::int64_t n, int nb, Grid grid = {})
        : TiledMatrix(chop(m, nb), chop(n, nb), grid) {}

    /// Explicit tile sizes per block row and block column.
    TiledMatrix(std::vector<int> row_sizes, std::vector<int> col_sizes,
                Grid grid = {}) {
        s_ = std::make_shared<Storage>();
        s_->rb = std::move(row_sizes);
        s_->cb = std::move(col_sizes);
        s_->grid = grid;
        s_->mt = static_cast<int>(s_->rb.size());
        s_->nt = static_cast<int>(s_->cb.size());
        s_->row_off.resize(s_->mt + 1, 0);
        s_->col_off.resize(s_->nt + 1, 0);
        for (int i = 0; i < s_->mt; ++i) {
            tbp_require(s_->rb[i] > 0);
            s_->row_off[i + 1] = s_->row_off[i] + s_->rb[i];
        }
        for (int j = 0; j < s_->nt; ++j) {
            tbp_require(s_->cb[j] > 0);
            s_->col_off[j + 1] = s_->col_off[j] + s_->cb[j];
        }
        // Each tile slot is rounded up to a whole number of cache lines so
        // every tile origin is 64-byte aligned (the allocator aligns the
        // base), keeping packed-kernel loads and stores off split lines.
        constexpr size_t align_elems = kCacheLineBytes / sizeof(T);
        s_->tile_offset.resize(static_cast<size_t>(s_->mt) * s_->nt + 1, 0);
        size_t off = 0;
        for (int j = 0; j < s_->nt; ++j) {
            for (int i = 0; i < s_->mt; ++i) {
                s_->tile_offset[idx(i, j)] = off;
                off += round_up(static_cast<size_t>(s_->rb[i]) * s_->cb[j],
                                align_elems);
            }
        }
        s_->tile_offset.back() = off;
        s_->data.assign(off, T(0));
        mt_ = s_->mt;
        nt_ = s_->nt;
    }

    bool empty() const { return s_ == nullptr || mt_ == 0 || nt_ == 0; }

    std::int64_t m() const {
        return s_->row_off[i0_ + mt_] - s_->row_off[i0_];
    }
    std::int64_t n() const {
        return s_->col_off[j0_ + nt_] - s_->col_off[j0_];
    }
    int mt() const { return mt_; }  ///< block rows in this view
    int nt() const { return nt_; }  ///< block columns in this view

    int tile_mb(int i) const { return s_->rb[i0_ + i]; }
    int tile_nb(int j) const { return s_->cb[j0_ + j]; }

    Grid grid() const { return s_->grid; }

    /// Block-cyclic owner rank of tile (i, j) — indices global to storage so
    /// that sub-views keep the parent's ownership.
    int owner_rank(int i, int j) const {
        return ((i0_ + i) % s_->grid.p) * s_->grid.q + (j0_ + j) % s_->grid.q;
    }

    /// Tile view (i, j) within this matrix view.
    Tile<T> tile(int i, int j) const {
        tbp_require(0 <= i && i < mt_ && 0 <= j && j < nt_);
        int const gi = i0_ + i, gj = j0_ + j;
        return Tile<T>(s_->data.data() + s_->tile_offset[idx(gi, gj)],
                       s_->rb[gi], s_->cb[gj], s_->rb[gi]);
    }

    Tile<T> operator()(int i, int j) const { return tile(i, j); }

    /// Dependency key for tile (i, j): its data pointer.
    void const* tile_key(int i, int j) const { return tile(i, j).data(); }

    /// Sub-view of block rows [i0, i0+mt) x block columns [j0, j0+nt),
    /// sharing storage and ownership with the parent.
    TiledMatrix sub(int i0, int j0, int mt, int nt) const {
        tbp_require(0 <= i0 && 0 <= j0 && mt >= 0 && nt >= 0);
        tbp_require(i0 + mt <= mt_ && j0 + nt <= nt_);
        TiledMatrix v;
        v.s_ = s_;
        v.i0_ = i0_ + i0;
        v.j0_ = j0_ + j0;
        v.mt_ = mt;
        v.nt_ = nt;
        return v;
    }

    /// Element access by global (row, col) within this view. O(log mt) tile
    /// lookup; intended for tests, generators and small drivers.
    T& at(std::int64_t i, std::int64_t j) const {
        tbp_require(0 <= i && i < m() && 0 <= j && j < n());
        std::int64_t const gi = i + s_->row_off[i0_];
        std::int64_t const gj = j + s_->col_off[j0_];
        int const ti = find_block(s_->row_off, gi);
        int const tj = find_block(s_->col_off, gj);
        Tile<T> t(s_->data.data() + s_->tile_offset[idx(ti, tj)],
                  s_->rb[ti], s_->cb[tj], s_->rb[ti]);
        return t(static_cast<int>(gi - s_->row_off[ti]),
                 static_cast<int>(gj - s_->col_off[tj]));
    }

    /// Deep copy with identical tiling, grid and contents.
    TiledMatrix clone() const {
        std::vector<int> rb(mt_), cb(nt_);
        for (int i = 0; i < mt_; ++i)
            rb[i] = tile_mb(i);
        for (int j = 0; j < nt_; ++j)
            cb[j] = tile_nb(j);
        TiledMatrix out(rb, cb, s_->grid);
        for (int j = 0; j < nt_; ++j)
            for (int i = 0; i < mt_; ++i) {
                Tile<T> src = tile(i, j), dst = out.tile(i, j);
                for (int c = 0; c < src.nb(); ++c)
                    for (int r = 0; r < src.mb(); ++r)
                        dst(r, c) = src(r, c);
            }
        return out;
    }

    /// Tile-size vector helpers.
    std::vector<int> row_tile_sizes() const {
        std::vector<int> v(mt_);
        for (int i = 0; i < mt_; ++i)
            v[i] = tile_mb(i);
        return v;
    }
    std::vector<int> col_tile_sizes() const {
        std::vector<int> v(nt_);
        for (int j = 0; j < nt_; ++j)
            v[j] = tile_nb(j);
        return v;
    }

    static std::vector<int> chop(std::int64_t len, int nb) {
        tbp_require(len >= 0 && nb > 0);
        std::vector<int> sizes;
        for (std::int64_t off = 0; off < len; off += nb)
            sizes.push_back(static_cast<int>(std::min<std::int64_t>(nb, len - off)));
        return sizes;  // empty when len == 0; callers check empty()
    }

private:
    struct Storage {
        aligned_vector<T> data;
        std::vector<size_t> tile_offset;  // column-major over (i, j)
        std::vector<int> rb, cb;
        std::vector<std::int64_t> row_off, col_off;
        int mt = 0, nt = 0;
        Grid grid;
    };

    size_t idx(int i, int j) const {
        return static_cast<size_t>(i) + static_cast<size_t>(j) * s_->mt;
    }

    static int find_block(std::vector<std::int64_t> const& off, std::int64_t x) {
        int lo = 0, hi = static_cast<int>(off.size()) - 2;
        while (lo < hi) {
            int mid = (lo + hi + 1) / 2;
            if (off[mid] <= x)
                lo = mid;
            else
                hi = mid - 1;
        }
        return lo;
    }

    std::shared_ptr<Storage> s_;
    int i0_ = 0, j0_ = 0, mt_ = 0, nt_ = 0;
};

}  // namespace tbp
