// Injection/recovery counters, separated from the injector machinery so
// comm::CommStats can embed them without pulling in the transport state
// (the same layering rule comm_stats.hh follows for the mailbox).

#pragma once

#include <cstdint>

namespace tbp::fault {

/// Per-rank fault counters, aggregated across ranks by perf::fault_report.
/// "Injected" counters record what the plan did to this rank's sends; the
/// rest record what this rank's receive-side recovery observed. Counter
/// identities the chaos tests assert: with a drop-only plan every dropped
/// message is re-driven exactly once (resends == injected_drops); with a
/// corrupt-only plan every corruption is detected and recovered in place
/// (checksum_failures == injected_corrupts == resends); duplicates are
/// absorbed either in-run (dup_absorbed) or at world teardown.
struct FaultStats {
    std::uint64_t injected_drops = 0;
    std::uint64_t injected_delays = 0;
    std::uint64_t injected_dups = 0;
    std::uint64_t injected_corrupts = 0;
    std::uint64_t slowdowns = 0;          ///< sends delayed by the straggler
    std::uint64_t resends = 0;            ///< retained copies re-driven
    std::uint64_t checksum_failures = 0;  ///< corrupted payloads detected
    std::uint64_t dup_absorbed = 0;       ///< duplicate deliveries discarded
    std::uint64_t recovery_errors = 0;    ///< errors absorbed by drain guards

    bool any() const {
        return injected_drops || injected_delays || injected_dups
               || injected_corrupts || slowdowns || resends
               || checksum_failures || dup_absorbed || recovery_errors;
    }

    FaultStats& operator+=(FaultStats const& o) {
        injected_drops += o.injected_drops;
        injected_delays += o.injected_delays;
        injected_dups += o.injected_dups;
        injected_corrupts += o.injected_corrupts;
        slowdowns += o.slowdowns;
        resends += o.resends;
        checksum_failures += o.checksum_failures;
        dup_absorbed += o.dup_absorbed;
        recovery_errors += o.recovery_errors;
        return *this;
    }
};

}  // namespace tbp::fault
