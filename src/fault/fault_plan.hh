// Seeded, deterministic fault plans for the chaos/recovery subsystem.
//
// A FaultPlan is a pure value: given the identity of a message — the
// (src, dst, tag) channel plus the per-channel sequence number the reliable
// transport assigns — it decides, by counter-based hashing of the seed,
// whether that message is dropped, delayed, duplicated, or corrupted, and
// whether a rank is slowed or poisoned (fail-stop). Because the decision
// depends only on (seed, src, dst, tag, seq) and every channel's traffic is
// produced by one sender in program order, an entire chaos run is replayable
// from the single seed: the same messages get the same faults, the injected
// counters match exactly, and (in the collectives' deterministic mode) the
// recovered results are bit-identical to the fault-free oracle.
//
// This header is standalone (no communicator dependency) so the service
// layer can embed a plan in a JobSpec and the perf layer can describe one in
// a report without pulling in the transport.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace tbp::fault {

/// The fault classes the injector knows how to apply.
enum class FaultKind {
    None,        ///< injection disabled (the plan is inert)
    Drop,        ///< message never enters the destination channel
    Delay,       ///< message is embargoed for delay_ms before delivery
    Duplicate,   ///< message is delivered twice (receiver absorbs the copy)
    Corrupt,     ///< one payload byte is flipped (checksum catches it)
    Slowdown,    ///< a straggler rank sleeps before every send
    PoisonRank,  ///< a rank fail-stops at its poison_after_sends-th send
    Mix,         ///< drop + delay + duplicate + corrupt together
};

inline char const* fault_kind_name(FaultKind k) {
    switch (k) {
        case FaultKind::None: return "none";
        case FaultKind::Drop: return "drop";
        case FaultKind::Delay: return "delay";
        case FaultKind::Duplicate: return "dup";
        case FaultKind::Corrupt: return "corrupt";
        case FaultKind::Slowdown: return "slow";
        case FaultKind::PoisonRank: return "poison";
        case FaultKind::Mix: return "mix";
    }
    return "?";
}

/// Per-message verdict of a plan (at most one payload fault per message;
/// drop wins over corrupt wins over duplicate wins over delay).
struct FaultAction {
    bool drop = false;
    bool corrupt = false;
    bool duplicate = false;
    double delay_ms = 0;  ///< > 0: embargo the message this long
};

namespace detail {

/// splitmix64 — the counter-RNG finalizer; full-avalanche, so adjacent
/// (seed, key) pairs give independent uniforms.
inline std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Uniform in [0, 1) from a hashed key, decorrelated per fault stream.
inline double uniform(std::uint64_t seed, std::uint64_t stream,
                      std::uint64_t key) {
    std::uint64_t const h = mix64(mix64(seed ^ stream) ^ key);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Fold a message identity into one hash key. Tags may be negative
/// (internal collective namespace), so widen through int64 first.
inline std::uint64_t msg_key(int src, int dst, int tag, std::uint64_t seq) {
    std::uint64_t k = static_cast<std::uint64_t>(static_cast<std::int64_t>(src));
    k = mix64(k ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(dst)));
    k = mix64(k ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(tag)));
    return mix64(k ^ seq);
}

}  // namespace detail

/// A complete, replayable chaos configuration. Default-constructed plans are
/// inert (enabled() == false) so embedding one in a JobSpec costs nothing.
struct FaultPlan {
    std::uint64_t seed = 0;

    // Per-message fault rates in [0, 1], evaluated per message from the
    // seed (independent streams, applied in drop > corrupt > dup > delay
    // priority so each message carries at most one payload fault).
    double drop_rate = 0;
    double corrupt_rate = 0;
    double dup_rate = 0;
    double delay_rate = 0;
    double delay_ms = 2.0;  ///< embargo length of a delayed message

    // Straggler: rank slow_rank sleeps slow_us microseconds before each send.
    int slow_rank = -1;
    double slow_us = 0;

    // Fail-stop: rank poison_rank throws RankFailedError when it is about to
    // perform its (poison_after_sends + 1)-th send. -1 disables.
    int poison_rank = -1;
    std::uint64_t poison_after_sends = 0;

    bool enabled() const {
        return drop_rate > 0 || corrupt_rate > 0 || dup_rate > 0
               || delay_rate > 0 || (slow_rank >= 0 && slow_us > 0)
               || poison_rank >= 0;
    }

    /// Deterministic verdict for one message. Pure: same plan + identity
    /// always yields the same action.
    FaultAction action(int src, int dst, int tag, std::uint64_t seq) const {
        FaultAction a;
        std::uint64_t const key = detail::msg_key(src, dst, tag, seq);
        if (drop_rate > 0 && detail::uniform(seed, 0x11, key) < drop_rate) {
            a.drop = true;
            return a;
        }
        if (corrupt_rate > 0
            && detail::uniform(seed, 0x22, key) < corrupt_rate) {
            a.corrupt = true;
            return a;
        }
        if (dup_rate > 0 && detail::uniform(seed, 0x33, key) < dup_rate) {
            a.duplicate = true;
            return a;
        }
        if (delay_rate > 0 && detail::uniform(seed, 0x44, key) < delay_rate)
            a.delay_ms = delay_ms;
        return a;
    }

    /// Deterministic position of the flipped byte in a corrupted payload.
    std::size_t corrupt_offset(std::uint64_t seq, std::size_t bytes) const {
        return bytes == 0
                   ? 0
                   : static_cast<std::size_t>(detail::mix64(seed ^ seq)
                                              % bytes);
    }

    /// Named single-fault plan at the given rate — the driver's
    /// --fault-plan presets. PoisonRank poisons rank 1 (or 0 in a 1-rank
    /// world) after 20 sends; Slowdown slows rank 1 by 200us per send.
    static FaultPlan preset(FaultKind kind, std::uint64_t seed,
                            double rate = 0.05) {
        FaultPlan p;
        p.seed = seed;
        switch (kind) {
            case FaultKind::None: break;
            case FaultKind::Drop: p.drop_rate = rate; break;
            case FaultKind::Delay: p.delay_rate = rate; break;
            case FaultKind::Duplicate: p.dup_rate = rate; break;
            case FaultKind::Corrupt: p.corrupt_rate = rate; break;
            case FaultKind::Slowdown:
                p.slow_rank = 1;
                p.slow_us = 200;
                break;
            case FaultKind::PoisonRank:
                p.poison_rank = 1;
                p.poison_after_sends = 20;
                break;
            case FaultKind::Mix:
                p.drop_rate = rate / 2;
                p.corrupt_rate = rate / 2;
                p.dup_rate = rate / 2;
                p.delay_rate = rate / 2;
                break;
        }
        return p;
    }

    std::string describe() const {
        if (!enabled())
            return "fault plane off";
        std::string s = "seed=" + std::to_string(seed);
        auto pct = [](double r) {
            return std::to_string(r * 100).substr(0, 4) + "%";
        };
        if (drop_rate > 0) s += " drop=" + pct(drop_rate);
        if (corrupt_rate > 0) s += " corrupt=" + pct(corrupt_rate);
        if (dup_rate > 0) s += " dup=" + pct(dup_rate);
        if (delay_rate > 0)
            s += " delay=" + pct(delay_rate) + "@"
                 + std::to_string(delay_ms).substr(0, 4) + "ms";
        if (slow_rank >= 0 && slow_us > 0)
            s += " slow=rank" + std::to_string(slow_rank);
        if (poison_rank >= 0)
            s += " poison=rank" + std::to_string(poison_rank) + "@"
                 + std::to_string(poison_after_sends);
        return s;
    }
};

/// Recovery knobs of the reliable transport (active only when a plan is
/// installed; the fault-free fast path never reads them).
struct RetryConfig {
    double timeout_ms = 50;  ///< first resend check after this long blocked
    int retry_max = 8;       ///< consecutive no-progress rounds before error
    double backoff = 2.0;    ///< wait-slice multiplier per round (bounded)
    /// Hard per-wait budget; 0 derives timeout_ms * 2^retry_max (the sum of
    /// the backoff series), after which a blocked receive reports a
    /// dimensioned CommError instead of hanging.
    double deadline_ms = 0;

    double deadline_seconds() const {
        if (deadline_ms > 0)
            return deadline_ms / 1e3;
        double d = timeout_ms;
        for (int i = 0; i < retry_max; ++i)
            d *= backoff;
        return d / 1e3;
    }
};

}  // namespace tbp::fault
