// Stateful fault injector + reliable-transport bookkeeping for one World.
//
// The injector sits between Communicator::push_message and the shared
// channels. In fault mode every p2p payload is wrapped in a small wire
// envelope {magic, seq, checksum}: seq is the per-(src,dst,tag)-channel
// sequence number (assigned in sender program order, so it is deterministic)
// and the checksum is FNV-1a over the payload. The sender retains a clean
// copy of each enveloped message; the receiver delivers strictly in seq
// order, absorbing duplicates (seq <= delivered), quarantining corrupted
// payloads (checksum mismatch -> recover from the retained copy), and
// re-driving gaps left by drops (a blocked receiver re-injects the retained
// copy after a timeout). Retained copies are garbage-collected as soon as
// the receiver acknowledges delivery by advancing the per-channel delivered
// counter — sender and receiver share the World's one mutex, so the
// "ack" is just that counter.
//
// With no plan installed the Communicator never touches this class and the
// wire format stays the bare payload — the fault-free fast path is
// byte-identical to the pre-fault engine.
//
// All methods expect the caller to hold the World's Shared::mtx (the same
// discipline as Communicator::progress_locked); the exceptions are the pure
// helpers and the sleep in slowdown_seconds, which the sender performs
// outside the lock.

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "fault/fault_plan.hh"
#include "fault/fault_stats.hh"

namespace tbp::fault {

/// First word of every enveloped message; lets teardown distinguish an
/// enveloped leftover from garbage and guards against mixing modes.
inline constexpr std::uint64_t kWireMagic = 0x74627046'4c543031ULL;  // tbpFLT01

/// Envelope layout: three little-endian u64 words before the payload.
inline constexpr std::size_t kHeaderBytes = 3 * sizeof(std::uint64_t);

/// FNV-1a 64-bit over the payload. Cheap, byte-order independent, and a
/// single flipped byte always changes the digest.
inline std::uint64_t checksum(std::byte const* p, std::size_t n) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= static_cast<std::uint64_t>(p[i]);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/// Shared injector state for one World (owned by comm::detail::Shared,
/// reset by World::run). Channel key mirrors the mailbox: (src, dst, tag).
class FaultInjector {
public:
    using Key = std::tuple<int, int, int>;

    FaultInjector(FaultPlan plan, RetryConfig retry)
        : plan_(plan), retry_(retry) {}

    FaultPlan const& plan() const { return plan_; }
    RetryConfig const& retry() const { return retry_; }

    /// Fresh per-run transport state (counters survive into the report of
    /// the previous run until the next begin_run).
    void begin_run() {
        next_seq_.clear();
        delivered_.clear();
        retained_.clear();
        sends_by_rank_.clear();
        dead_.clear();
    }

    // --- sender side (caller holds Shared::mtx) ---------------------------

    /// True if `src` has reached its fail-stop point; the caller throws
    /// RankFailedError on the poisoned rank's own thread.
    bool poison_check(int src) {
        if (plan_.poison_rank != src)
            return false;
        if (dead_.count(src))
            return true;
        if (sends_by_rank_[src] >= plan_.poison_after_sends) {
            dead_.insert(src);
            return true;
        }
        return false;
    }

    bool rank_dead(int r) const { return dead_.count(r) != 0; }

    /// Straggler delay for this send, in seconds (sleep *outside* the lock).
    double slowdown_seconds(int src) const {
        return (plan_.slow_rank == src && plan_.slow_us > 0)
                   ? plan_.slow_us / 1e6
                   : 0;
    }

    /// Assign the next sequence number on (src, dst, tag) and wrap the
    /// payload in the wire envelope. Also counts the send toward the
    /// poison-point budget.
    std::vector<std::byte> envelope(int src, int dst, int tag,
                                    std::vector<std::byte> const& payload,
                                    std::uint64_t& seq_out) {
        std::uint64_t const seq = next_seq_[{src, dst, tag}]++;
        ++sends_by_rank_[src];
        seq_out = seq;
        std::vector<std::byte> wire(kHeaderBytes + payload.size());
        std::uint64_t const words[3] = {kWireMagic, seq,
                                        checksum(payload.data(),
                                                 payload.size())};
        std::memcpy(wire.data(), words, kHeaderBytes);
        if (!payload.empty())
            std::memcpy(wire.data() + kHeaderBytes, payload.data(),
                        payload.size());
        return wire;
    }

    /// Remember the clean copy so the receiver can re-drive it after a drop
    /// or recover it after corruption. GC'd once delivery advances past seq.
    void retain(int src, int dst, int tag, std::uint64_t seq,
                std::vector<std::byte> wire) {
        retained_[{src, dst, tag}].emplace(seq, std::move(wire));
    }

    /// Flip one deterministic payload byte in an enveloped message (the
    /// header is left intact so the receiver can identify the message and
    /// detect the damage by checksum).
    void corrupt_payload(std::vector<std::byte>& wire,
                         std::uint64_t seq) const {
        if (wire.size() <= kHeaderBytes)
            return;  // zero-length payload: nothing to corrupt
        std::size_t const off =
            plan_.corrupt_offset(seq, wire.size() - kHeaderBytes);
        wire[kHeaderBytes + off] ^= std::byte{0x01};
    }

    // --- receiver side (caller holds Shared::mtx) -------------------------

    /// Parse an enveloped message. Returns false for a non-enveloped one
    /// (possible only if a plan was installed mid-world — treated as a
    /// program error by the caller).
    static bool parse(std::vector<std::byte> const& wire, std::uint64_t& seq,
                      std::uint64_t& sum, std::size_t& payload_bytes) {
        if (wire.size() < kHeaderBytes)
            return false;
        std::uint64_t words[3];
        std::memcpy(words, wire.data(), kHeaderBytes);
        if (words[0] != kWireMagic)
            return false;
        seq = words[1];
        sum = words[2];
        payload_bytes = wire.size() - kHeaderBytes;
        return true;
    }

    static bool verify(std::vector<std::byte> const& wire,
                       std::uint64_t expected_sum) {
        return checksum(wire.data() + kHeaderBytes,
                        wire.size() - kHeaderBytes)
               == expected_sum;
    }

    /// Next sequence number this channel's receiver is waiting for.
    std::uint64_t expected_seq(int src, int dst, int tag) const {
        auto it = delivered_.find({src, dst, tag});
        return it == delivered_.end() ? 0 : it->second;
    }

    /// True if seq was already delivered on this channel (duplicate).
    bool already_delivered(int src, int dst, int tag,
                           std::uint64_t seq) const {
        return seq < expected_seq(src, dst, tag);
    }

    /// Acknowledge in-order delivery of `seq`: advance the channel cursor
    /// and drop retained copies the receiver can never need again.
    void acknowledge(int src, int dst, int tag, std::uint64_t seq) {
        Key const k{src, dst, tag};
        delivered_[k] = seq + 1;
        auto it = retained_.find(k);
        if (it == retained_.end())
            return;
        auto& m = it->second;
        m.erase(m.begin(), m.upper_bound(seq));
        if (m.empty())
            retained_.erase(it);
    }

    /// Clean retained copy of the message the receiver is stuck on, if the
    /// sender already produced it (null: the sender is merely slow — keep
    /// waiting). The copy stays retained until acknowledged, so repeated
    /// re-drives are idempotent.
    std::vector<std::byte> const* retained_copy(int src, int dst,
                                                int tag) const {
        auto it = retained_.find({src, dst, tag});
        if (it == retained_.end())
            return nullptr;
        auto m = it->second.find(expected_seq(src, dst, tag));
        return m == it->second.end() ? nullptr : &m->second;
    }

    /// True if the channel's sender fail-stopped before producing the
    /// message the receiver is waiting for (no retained copy exists and the
    /// sender can never make one) — the receive can fail fast.
    bool sender_gone(int src, int dst, int tag) const {
        return rank_dead(src) && retained_copy(src, dst, tag) == nullptr;
    }

    /// Teardown classification: an enveloped leftover whose seq was
    /// delivered is a harmless duplicate/re-drive residue, not a leak.
    bool teardown_absorbable(int src, int dst, int tag,
                             std::vector<std::byte> const& wire) const {
        std::uint64_t seq, sum;
        std::size_t n;
        return parse(wire, seq, sum, n)
               && already_delivered(src, dst, tag, seq);
    }

private:
    FaultPlan plan_;
    RetryConfig retry_;

    std::map<Key, std::uint64_t> next_seq_;   ///< sender-side seq counters
    std::map<Key, std::uint64_t> delivered_;  ///< receiver cursor (seq + 1)
    std::map<Key, std::map<std::uint64_t, std::vector<std::byte>>> retained_;
    std::map<int, std::uint64_t> sends_by_rank_;  ///< poison-point budget
    std::set<int> dead_;                          ///< fail-stopped ranks
};

}  // namespace tbp::fault
