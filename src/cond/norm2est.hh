// Matrix two-norm estimation by power iteration — paper Algorithm 2.
//
// The initial vector is the vector of column absolute sums (computed as
// local tile sums + a global reduction, mirroring internal::norm +
// MPI_Allreduce in the paper); iterations alternate x -> A x -> A^H (A x)
// through gemmA, the tall-A-by-skinny-vector product of Section 6.2.
// The tolerance is 0.1: "approximations accurate to a factor of 5 are
// entirely satisfactory" for scaling QDWH's initial iterate.

#pragma once

#include <cmath>
#include <cstdint>

#include "linalg/gemm.hh"
#include "linalg/util.hh"
#include "matrix/tiled_matrix.hh"
#include "runtime/engine.hh"

namespace tbp::cond {

struct Norm2estOptions {
    double tol = 0.1;
    int max_iter = 100;
};

/// Estimate ||A||_2 (largest singular value). Returns 0 for a zero matrix.
template <typename Ex, typename T>
real_t<T> norm2est(Ex& eng, TiledMatrix<T> A,
                   Norm2estOptions const& opt = {}) {
    using R = real_t<T>;

    // Distributed vectors X (n) and AX (m) sharing A's tile boundaries.
    TiledMatrix<T> X(A.col_tile_sizes(), {1}, A.grid());
    TiledMatrix<T> AX(A.row_tile_sizes(), {1}, A.grid());

    // X := column absolute sums of A (Algorithm 2 lines 5-8).
    auto sums = la::col_abs_sums(eng, A);
    for (std::int64_t j = 0; j < A.n(); ++j)
        X.at(j, 0) = from_real<T>(sums[static_cast<size_t>(j)]);

    // Initial estimate e = ||X||_F.
    R e = la::norm(eng, Norm::Fro, X);
    if (e == R(0))
        return R(0);

    R e0(0);
    R normX = e;
    int iter = 0;
    while (std::abs(e - e0) > opt.tol * e && iter < opt.max_iter) {
        e0 = e;
        la::scale(eng, from_real<T>(R(1) / normX), X);

        la::gemmA(eng, Op::NoTrans, T(1), A, X, T(0), AX);   // AX = A x
        la::gemmA(eng, Op::ConjTrans, T(1), A, AX, T(0), X); // X  = A^H (A x)

        normX = la::norm(eng, Norm::Fro, X);
        R const normAX = la::norm(eng, Norm::Fro, AX);
        if (normAX == R(0) || normX == R(0))
            return e0;  // hit the null space; keep the last estimate
        e = normX / normAX;
        ++iter;
    }
    return e;
}

}  // namespace tbp::cond
