// One-norm condition estimation (paper Section 6.3).
//
//   norm1est  - Hager's algorithm [Hager 1984] with reverse communication:
//               estimates ||B||_1 given only the products B*x and B^H*x.
//               As in (Sca)LAPACK's xLACON, a single implementation serves
//               any factorization by plugging in the right solves.
//   trcondest - reciprocal 1-norm condition estimate of a triangular R
//               (QDWH calls this on R from A = QR, Algorithm 1 line 17).
//   gecondest - reciprocal condition estimate of a general matrix given its
//               tiled Cholesky-like or LU-like solves; the tiled variant
//               here uses a QR of a scratch copy, the dense-reference LU
//               variant lives in src/ref/.

#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "linalg/trsm.hh"
#include "linalg/util.hh"
#include "matrix/tiled_matrix.hh"
#include "runtime/engine.hh"

namespace tbp::cond {

/// Estimate ||B||_1 for an implicit n-by-n operator B using Hager's
/// algorithm. `apply` overwrites the vector v with B v; `apply_h` with
/// B^H v. Both act on a dense vector of length n.
template <typename T>
real_t<T> norm1est(std::int64_t n,
                   std::function<void(std::vector<T>&)> const& apply,
                   std::function<void(std::vector<T>&)> const& apply_h) {
    using R = real_t<T>;
    tbp_require(n >= 1);

    auto norm1 = [](std::vector<T> const& v) {
        R s(0);
        for (auto const& x : v)
            s += std::abs(x);
        return s;
    };
    auto sign_of = [](T x) -> T {
        R const a = std::abs(x);
        return a == R(0) ? T(1) : x / from_real<T>(a);
    };
    auto argmax_abs = [](std::vector<T> const& v) {
        std::int64_t j = 0;
        R best(-1);
        for (std::int64_t i = 0; i < static_cast<std::int64_t>(v.size()); ++i) {
            R const a = std::abs(v[static_cast<size_t>(i)]);
            if (a > best) {
                best = a;
                j = i;
            }
        }
        return j;
    };

    std::vector<T> x(static_cast<size_t>(n), from_real<T>(R(1) / R(n)));
    apply(x);  // x := B * (1/n) e
    if (n == 1)
        return std::abs(x[0]);

    R est = norm1(x);

    for (auto& v : x)
        v = sign_of(v);
    apply_h(x);  // x := B^H sign(y)
    std::int64_t j = argmax_abs(x);

    for (int iter = 0; iter < 5; ++iter) {
        std::fill(x.begin(), x.end(), T(0));
        x[static_cast<size_t>(j)] = T(1);
        apply(x);  // y := B e_j
        R const est_new = norm1(x);
        if (est_new <= est)
            break;
        est = est_new;
        for (auto& v : x)
            v = sign_of(v);
        apply_h(x);
        std::int64_t const j_new = argmax_abs(x);
        if (j_new == j)
            break;
        j = j_new;
    }

    // Alternating-sign safeguard (dlacn2's final probe).
    R altsgn(1);
    for (std::int64_t i = 0; i < n; ++i) {
        x[static_cast<size_t>(i)] = from_real<T>(
            altsgn * (R(1) + R(i) / R(std::max<std::int64_t>(n - 1, 1))));
        altsgn = -altsgn;
    }
    apply(x);
    R const est2 = R(2) * norm1(x) / (R(3) * R(n));
    return std::max(est, est2);
}

/// 1-norm of the upper-triangular R stored in the top square of a
/// geqrf-factored matrix (entries below the diagonal are reflector data and
/// must be ignored).
template <typename Ex, typename T>
real_t<T> tr_norm1(Ex& eng, TiledMatrix<T> R_) {
    using R = real_t<T>;
    eng.wait();  // serial pass over upper triangle; R_ must be quiescent
    int const nt = R_.nt();
    R best(0);
    std::int64_t col0 = 0;
    for (int j = 0; j < nt; ++j) {
        int const nbj = R_.tile_nb(j);
        std::vector<R> sums(static_cast<size_t>(nbj), R(0));
        std::int64_t row0 = 0;
        for (int i = 0; i <= j && i < R_.mt(); ++i) {
            auto t = R_.tile(i, j);
            for (int c = 0; c < t.nb(); ++c) {
                for (int r = 0; r < t.mb(); ++r) {
                    if (row0 + r <= col0 + c)
                        sums[static_cast<size_t>(c)] += std::abs(t(r, c));
                }
            }
            row0 += t.mb();
        }
        for (R s : sums)
            best = std::max(best, s);
        col0 += nbj;
    }
    return best;
}

/// Gather / scatter between a dense vector and a tiled n-by-1 column.
template <typename T>
void vec_to_tiled(std::vector<T> const& v, TiledMatrix<T>& X) {
    for (std::int64_t i = 0; i < X.m(); ++i)
        X.at(i, 0) = v[static_cast<size_t>(i)];
}

template <typename T>
void tiled_to_vec(TiledMatrix<T> const& X, std::vector<T>& v) {
    for (std::int64_t i = 0; i < X.m(); ++i)
        v[static_cast<size_t>(i)] = X.at(i, 0);
}

/// Reciprocal 1-norm condition estimate of the upper-triangular R held in
/// the top rows of a geqrf-factored matrix:
///   rcond = 1 / ( ||R||_1 * est(||R^{-1}||_1) ).
/// Returns 0 if R is exactly singular (zero diagonal). The R block is
/// extracted into a square-tiled scratch copy so that edge tiles conform
/// for the triangular solves even when m % nb != 0.
template <typename Ex, typename T>
real_t<T> trcondest(Ex& eng, TiledMatrix<T> Rfac) {
    using RT = real_t<T>;
    eng.wait();  // Rfac must be quiescent for the serial extraction
    std::int64_t const n = Rfac.n();
    tbp_require(Rfac.m() >= n);

    // Square-tiled copy of R (upper triangle; zeros below).
    TiledMatrix<T> Rsq(Rfac.col_tile_sizes(), Rfac.col_tile_sizes(),
                       Rfac.grid());
    for (std::int64_t j = 0; j < n; ++j)
        for (std::int64_t i = 0; i <= j; ++i)
            Rsq.at(i, j) = Rfac.at(i, j);

    // Exact-singularity guard.
    for (std::int64_t i = 0; i < n; ++i)
        if (Rsq.at(i, i) == T(0))
            return RT(0);

    RT const rnorm = tr_norm1(eng, Rsq);
    if (rnorm == RT(0))
        return RT(0);

    TiledMatrix<T> X(Rsq.col_tile_sizes(), {1}, Rsq.grid());
    auto solve = [&](std::vector<T>& v) {
        vec_to_tiled(v, X);
        la::trsm(eng, Side::Left, Uplo::Upper, Op::NoTrans, Diag::NonUnit,
                 T(1), Rsq, X);
        eng.wait();
        tiled_to_vec(X, v);
    };
    auto solve_h = [&](std::vector<T>& v) {
        vec_to_tiled(v, X);
        la::trsm(eng, Side::Left, Uplo::Upper, Op::ConjTrans, Diag::NonUnit,
                 T(1), Rsq, X);
        eng.wait();
        tiled_to_vec(X, v);
    };

    RT const rinv_norm = norm1est<T>(n, solve, solve_h);
    if (rinv_norm == RT(0))
        return RT(0);
    return RT(1) / (rnorm * rinv_norm);
}

}  // namespace tbp::cond
