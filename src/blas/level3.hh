// Sequential tile-level triangular and rank-k kernels: herk/syrk, trsm, trmm.
//
// Conventions follow BLAS: only the `uplo` triangle of Hermitian results is
// referenced, triangular solves overwrite the right-hand side, and `Diag`
// selects an implicit unit diagonal.
//
// Each kernel exists in two forms sharing one public entry point:
//   *_naive   - the original element loops, kept as the tested reference and
//               used for the diagonal blocks of the blocked forms.
//   *_blocked - kL3Block-wide diagonal blocks handled naively, everything
//               else reformulated as GEMM panels routed through the packed
//               micro-kernel layer (blas/kernel/), where almost all the
//               flops live.
// The dispatcher picks naive for small tiles or when TBP_NAIVE_BLAS is set,
// and charges the call's flops to the measured-rate counter either way.

#pragma once

#include <algorithm>

#include "blas/gemm.hh"
#include "blas/kernel/params.hh"
#include "blas/kernel/stats.hh"
#include "common/flops.hh"
#include "common/types.hh"
#include "matrix/tile.hh"

namespace tbp::blas {

/// Hermitian rank-k update.
///   op == NoTrans:   C := alpha * A * A^H + beta * C,  A n-by-k
///   op == ConjTrans: C := alpha * A^H * A + beta * C,  A k-by-n
/// alpha, beta are real; for real T this is syrk.
template <typename T>
void herk_naive(Uplo uplo, Op op, real_t<T> alpha, Tile<T> const& A,
                real_t<T> beta, Tile<T> const& C) {
    int const n = C.mb();
    tbp_require(C.nb() == n);
    int const k = (op == Op::NoTrans) ? A.nb() : A.mb();
    tbp_require(((op == Op::NoTrans) ? A.mb() : A.nb()) == n);

    auto a = [&](int i, int l) -> T {
        return (op == Op::NoTrans) ? A(i, l) : conj_val(A(l, i));
    };

    for (int j = 0; j < n; ++j) {
        int const ilo = (uplo == Uplo::Lower) ? j : 0;
        int const ihi = (uplo == Uplo::Lower) ? n : j + 1;
        for (int i = ilo; i < ihi; ++i) {
            T sum(0);
            for (int l = 0; l < k; ++l)
                sum += a(i, l) * conj_val(a(j, l));
            T c0 = (beta == real_t<T>(0)) ? T(0) : from_real<T>(beta) * C(i, j);
            C(i, j) = c0 + from_real<T>(alpha) * sum;
            if (i == j) {
                // Force an exactly real diagonal, as zherk does.
                C(i, j) = from_real<T>(real_part(C(i, j)));
            }
        }
    }
}

/// Blocked herk: naive diagonal blocks (preserving the exactly-real
/// diagonal), GEMM panels for the off-diagonal part of the triangle.
template <typename T>
void herk_blocked(Uplo uplo, Op op, real_t<T> alpha, Tile<T> const& A,
                  real_t<T> beta, Tile<T> const& C) {
    int const n = C.mb();
    tbp_require(C.nb() == n);
    int const k = (op == Op::NoTrans) ? A.nb() : A.mb();
    tbp_require(((op == Op::NoTrans) ? A.mb() : A.nb()) == n);

    T const al = from_real<T>(alpha);
    T const be = from_real<T>(beta);
    for (int j0 = 0; j0 < n; j0 += kernel::kL3Block) {
        int const bs = std::min(kernel::kL3Block, n - j0);
        auto Ad = (op == Op::NoTrans) ? A.sub(j0, 0, bs, k)
                                      : A.sub(0, j0, k, bs);
        herk_naive(uplo, op, alpha, Ad, beta, C.sub(j0, j0, bs, bs));
        if (uplo == Uplo::Lower && j0 + bs < n) {
            int const mrest = n - j0 - bs;
            if (op == Op::NoTrans)
                gemm_dispatch(Op::NoTrans, Op::ConjTrans, al,
                              A.sub(j0 + bs, 0, mrest, k), A.sub(j0, 0, bs, k),
                              be, C.sub(j0 + bs, j0, mrest, bs));
            else
                gemm_dispatch(Op::ConjTrans, Op::NoTrans, al,
                              A.sub(0, j0 + bs, k, mrest), A.sub(0, j0, k, bs),
                              be, C.sub(j0 + bs, j0, mrest, bs));
        } else if (uplo == Uplo::Upper && j0 > 0) {
            if (op == Op::NoTrans)
                gemm_dispatch(Op::NoTrans, Op::ConjTrans, al,
                              A.sub(0, 0, j0, k), A.sub(j0, 0, bs, k), be,
                              C.sub(0, j0, j0, bs));
            else
                gemm_dispatch(Op::ConjTrans, Op::NoTrans, al,
                              A.sub(0, 0, k, j0), A.sub(0, j0, k, bs), be,
                              C.sub(0, j0, j0, bs));
        }
    }
}

template <typename T>
void herk(Uplo uplo, Op op, real_t<T> alpha, Tile<T> const& A,
          real_t<T> beta, Tile<T> const& C) {
    int const n = C.mb();
    int const k = (op == Op::NoTrans) ? A.nb() : A.mb();
    if (kernel::use_naive() || n <= kernel::kL3Block)
        herk_naive(uplo, op, alpha, A, beta, C);
    else
        herk_blocked(uplo, op, alpha, A, beta, C);
    kernel::count_flops(flops::syrk(n, k) * (fma_flops<T>() / 2.0),
                        prec::charge_prec<T>());
}

/// Triangular solve with multiple right-hand sides.
///   side == Left:  solve op(A) * X = alpha * B,  A m-by-m, B m-by-n
///   side == Right: solve X * op(A) = alpha * B,  A n-by-n, B m-by-n
/// X overwrites B.
template <typename T>
void trsm_naive(Side side, Uplo uplo, Op op, Diag diag, T alpha,
                Tile<T> const& A, Tile<T> const& B) {
    int const m = B.mb();
    int const n = B.nb();
    int const na = (side == Side::Left) ? m : n;
    tbp_require(A.mb() == na && A.nb() == na);

    // Element of op(A).
    auto a = [&](int i, int j) -> T {
        return (op == Op::NoTrans) ? A(i, j) : apply_op(op, A(j, i));
    };
    // Is op(A) effectively upper triangular?
    bool const eff_upper = (uplo == Uplo::Upper) == (op == Op::NoTrans);

    if (alpha != T(1)) {
        for (int j = 0; j < n; ++j)
            for (int i = 0; i < m; ++i)
                B(i, j) = (alpha == T(0)) ? T(0) : alpha * B(i, j);
    }

    if (side == Side::Left) {
        for (int j = 0; j < n; ++j) {
            if (!eff_upper) {
                for (int i = 0; i < m; ++i) {
                    T x = B(i, j);
                    for (int l = 0; l < i; ++l)
                        x -= a(i, l) * B(l, j);
                    B(i, j) = (diag == Diag::Unit) ? x : x / a(i, i);
                }
            } else {
                for (int i = m - 1; i >= 0; --i) {
                    T x = B(i, j);
                    for (int l = i + 1; l < m; ++l)
                        x -= a(i, l) * B(l, j);
                    B(i, j) = (diag == Diag::Unit) ? x : x / a(i, i);
                }
            }
        }
    } else {
        // X * op(A) = B: column j of B couples X columns l with a(l, j) != 0.
        if (eff_upper) {
            for (int j = 0; j < n; ++j) {
                for (int l = 0; l < j; ++l) {
                    T const alj = a(l, j);
                    if (alj == T(0))
                        continue;
                    for (int i = 0; i < m; ++i)
                        B(i, j) -= B(i, l) * alj;
                }
                if (diag == Diag::NonUnit) {
                    T const d = a(j, j);
                    for (int i = 0; i < m; ++i)
                        B(i, j) /= d;
                }
            }
        } else {
            for (int j = n - 1; j >= 0; --j) {
                for (int l = j + 1; l < n; ++l) {
                    T const alj = a(l, j);
                    if (alj == T(0))
                        continue;
                    for (int i = 0; i < m; ++i)
                        B(i, j) -= B(i, l) * alj;
                }
                if (diag == Diag::NonUnit) {
                    T const d = a(j, j);
                    for (int i = 0; i < m; ++i)
                        B(i, j) /= d;
                }
            }
        }
    }
}

/// Blocked trsm: right-looking block substitution — naive solve on each
/// kL3Block diagonal block, one GEMM panel update of the remaining
/// right-hand sides per block step.
template <typename T>
void trsm_blocked(Side side, Uplo uplo, Op op, Diag diag, T alpha,
                  Tile<T> const& A, Tile<T> const& B) {
    int const m = B.mb();
    int const n = B.nb();
    int const na = (side == Side::Left) ? m : n;
    tbp_require(A.mb() == na && A.nb() == na);
    constexpr int BS = kernel::kL3Block;
    bool const eff_upper = (uplo == Uplo::Upper) == (op == Op::NoTrans);

    // Same alpha convention as the naive kernel: applied once up front,
    // alpha == 0 stores zeros unconditionally.
    kernel::scale_beta(alpha, B);
    if (na == 0 || m == 0 || n == 0)
        return;
    int const last = (na - 1) / BS * BS;  // first index of the last block

    if (side == Side::Left) {
        if (!eff_upper) {
            for (int k0 = 0; k0 < m; k0 += BS) {
                int const bs = std::min(BS, m - k0);
                trsm_naive(Side::Left, uplo, op, diag, T(1),
                           A.sub(k0, k0, bs, bs), B.sub(k0, 0, bs, n));
                int const mrest = m - k0 - bs;
                if (mrest > 0) {
                    auto Ak = (op == Op::NoTrans)
                                  ? A.sub(k0 + bs, k0, mrest, bs)
                                  : A.sub(k0, k0 + bs, bs, mrest);
                    gemm_dispatch(op, Op::NoTrans, T(-1), Ak,
                                  B.sub(k0, 0, bs, n), T(1),
                                  B.sub(k0 + bs, 0, mrest, n));
                }
            }
        } else {
            for (int k0 = last; k0 >= 0; k0 -= BS) {
                int const bs = std::min(BS, m - k0);
                trsm_naive(Side::Left, uplo, op, diag, T(1),
                           A.sub(k0, k0, bs, bs), B.sub(k0, 0, bs, n));
                if (k0 > 0) {
                    auto Ak = (op == Op::NoTrans) ? A.sub(0, k0, k0, bs)
                                                  : A.sub(k0, 0, bs, k0);
                    gemm_dispatch(op, Op::NoTrans, T(-1), Ak,
                                  B.sub(k0, 0, bs, n), T(1),
                                  B.sub(0, 0, k0, n));
                }
            }
        }
    } else {
        if (eff_upper) {
            for (int k0 = 0; k0 < n; k0 += BS) {
                int const bs = std::min(BS, n - k0);
                trsm_naive(Side::Right, uplo, op, diag, T(1),
                           A.sub(k0, k0, bs, bs), B.sub(0, k0, m, bs));
                int const nrest = n - k0 - bs;
                if (nrest > 0) {
                    auto Ak = (op == Op::NoTrans)
                                  ? A.sub(k0, k0 + bs, bs, nrest)
                                  : A.sub(k0 + bs, k0, nrest, bs);
                    gemm_dispatch(Op::NoTrans, op, T(-1),
                                  B.sub(0, k0, m, bs), Ak, T(1),
                                  B.sub(0, k0 + bs, m, nrest));
                }
            }
        } else {
            for (int k0 = last; k0 >= 0; k0 -= BS) {
                int const bs = std::min(BS, n - k0);
                trsm_naive(Side::Right, uplo, op, diag, T(1),
                           A.sub(k0, k0, bs, bs), B.sub(0, k0, m, bs));
                if (k0 > 0) {
                    auto Ak = (op == Op::NoTrans) ? A.sub(k0, 0, bs, k0)
                                                  : A.sub(0, k0, k0, bs);
                    gemm_dispatch(Op::NoTrans, op, T(-1),
                                  B.sub(0, k0, m, bs), Ak, T(1),
                                  B.sub(0, 0, m, k0));
                }
            }
        }
    }
}

template <typename T>
void trsm(Side side, Uplo uplo, Op op, Diag diag, T alpha,
          Tile<T> const& A, Tile<T> const& B) {
    int const m = B.mb();
    int const n = B.nb();
    int const na = (side == Side::Left) ? m : n;
    if (kernel::use_naive() || na <= kernel::kL3Block)
        trsm_naive(side, uplo, op, diag, alpha, A, B);
    else
        trsm_blocked(side, uplo, op, diag, alpha, A, B);
    kernel::count_flops((side == Side::Left ? flops::trsm_left(m, n)
                                            : flops::trsm_right(m, n))
                        * (fma_flops<T>() / 2.0),
                        prec::charge_prec<T>());
}

/// Triangular matrix-matrix multiply, left side only (all TBP call sites):
///   B := alpha * op(A) * B,  A m-by-m triangular, B m-by-n.
template <typename T>
void trmm_naive(Uplo uplo, Op op, Diag diag, T alpha, Tile<T> const& A,
                Tile<T> const& B) {
    int const m = B.mb();
    int const n = B.nb();
    tbp_require(A.mb() == m && A.nb() == m);

    auto a = [&](int i, int j) -> T {
        return (op == Op::NoTrans) ? A(i, j) : apply_op(op, A(j, i));
    };
    bool const eff_upper = (uplo == Uplo::Upper) == (op == Op::NoTrans);

    for (int j = 0; j < n; ++j) {
        if (eff_upper) {
            // Row i of the product uses B rows >= i: process top-down.
            for (int i = 0; i < m; ++i) {
                T x = (diag == Diag::Unit) ? B(i, j) : a(i, i) * B(i, j);
                for (int l = i + 1; l < m; ++l)
                    x += a(i, l) * B(l, j);
                B(i, j) = alpha * x;
            }
        } else {
            // Row i uses B rows <= i: process bottom-up.
            for (int i = m - 1; i >= 0; --i) {
                T x = (diag == Diag::Unit) ? B(i, j) : a(i, i) * B(i, j);
                for (int l = 0; l < i; ++l)
                    x += a(i, l) * B(l, j);
                B(i, j) = alpha * x;
            }
        }
    }
}

/// Blocked trmm: each block row of B is multiplied by the naive kernel on
/// the diagonal block, then receives the off-diagonal contribution as a
/// GEMM panel against the not-yet-overwritten block rows (top-down for
/// effectively-upper op(A), bottom-up otherwise).
template <typename T>
void trmm_blocked(Uplo uplo, Op op, Diag diag, T alpha, Tile<T> const& A,
                  Tile<T> const& B) {
    int const m = B.mb();
    int const n = B.nb();
    tbp_require(A.mb() == m && A.nb() == m);
    constexpr int BS = kernel::kL3Block;
    bool const eff_upper = (uplo == Uplo::Upper) == (op == Op::NoTrans);
    if (m == 0 || n == 0)
        return;
    int const last = (m - 1) / BS * BS;

    if (eff_upper) {
        for (int i0 = 0; i0 < m; i0 += BS) {
            int const bs = std::min(BS, m - i0);
            trmm_naive(uplo, op, diag, alpha, A.sub(i0, i0, bs, bs),
                       B.sub(i0, 0, bs, n));
            int const mrest = m - i0 - bs;
            if (mrest > 0) {
                auto Ak = (op == Op::NoTrans) ? A.sub(i0, i0 + bs, bs, mrest)
                                              : A.sub(i0 + bs, i0, mrest, bs);
                gemm_dispatch(op, Op::NoTrans, alpha, Ak,
                              B.sub(i0 + bs, 0, mrest, n), T(1),
                              B.sub(i0, 0, bs, n));
            }
        }
    } else {
        for (int i0 = last; i0 >= 0; i0 -= BS) {
            int const bs = std::min(BS, m - i0);
            trmm_naive(uplo, op, diag, alpha, A.sub(i0, i0, bs, bs),
                       B.sub(i0, 0, bs, n));
            if (i0 > 0) {
                auto Ak = (op == Op::NoTrans) ? A.sub(i0, 0, bs, i0)
                                              : A.sub(0, i0, i0, bs);
                gemm_dispatch(op, Op::NoTrans, alpha, Ak, B.sub(0, 0, i0, n),
                              T(1), B.sub(i0, 0, bs, n));
            }
        }
    }
}

/// Path selection without flop accounting (for composite kernels that
/// charge aggregate counts, e.g. the Householder appliers).
template <typename T>
void trmm_dispatch(Uplo uplo, Op op, Diag diag, T alpha, Tile<T> const& A,
                   Tile<T> const& B) {
    if (kernel::use_naive() || B.mb() <= kernel::kL3Block)
        trmm_naive(uplo, op, diag, alpha, A, B);
    else
        trmm_blocked(uplo, op, diag, alpha, A, B);
}

template <typename T>
void trmm(Uplo uplo, Op op, Diag diag, T alpha, Tile<T> const& A,
          Tile<T> const& B) {
    trmm_dispatch(uplo, op, diag, alpha, A, B);
    kernel::count_flops(flops::trmm(B.mb(), B.nb()) * (fma_flops<T>() / 2.0),
                        prec::charge_prec<T>());
}

}  // namespace tbp::blas
