// Sequential tile-level triangular and rank-k kernels: herk/syrk, trsm, trmm.
//
// Conventions follow BLAS: only the `uplo` triangle of Hermitian results is
// referenced, triangular solves overwrite the right-hand side, and `Diag`
// selects an implicit unit diagonal.

#pragma once

#include "common/types.hh"
#include "matrix/tile.hh"

namespace tbp::blas {

/// Hermitian rank-k update.
///   op == NoTrans:   C := alpha * A * A^H + beta * C,  A n-by-k
///   op == ConjTrans: C := alpha * A^H * A + beta * C,  A k-by-n
/// alpha, beta are real; for real T this is syrk.
template <typename T>
void herk(Uplo uplo, Op op, real_t<T> alpha, Tile<T> const& A,
          real_t<T> beta, Tile<T> const& C) {
    int const n = C.mb();
    tbp_require(C.nb() == n);
    int const k = (op == Op::NoTrans) ? A.nb() : A.mb();
    tbp_require(((op == Op::NoTrans) ? A.mb() : A.nb()) == n);

    auto a = [&](int i, int l) -> T {
        return (op == Op::NoTrans) ? A(i, l) : conj_val(A(l, i));
    };

    for (int j = 0; j < n; ++j) {
        int const ilo = (uplo == Uplo::Lower) ? j : 0;
        int const ihi = (uplo == Uplo::Lower) ? n : j + 1;
        for (int i = ilo; i < ihi; ++i) {
            T sum(0);
            for (int l = 0; l < k; ++l)
                sum += a(i, l) * conj_val(a(j, l));
            T c0 = (beta == real_t<T>(0)) ? T(0) : from_real<T>(beta) * C(i, j);
            C(i, j) = c0 + from_real<T>(alpha) * sum;
            if (i == j) {
                // Force an exactly real diagonal, as zherk does.
                C(i, j) = from_real<T>(real_part(C(i, j)));
            }
        }
    }
}

/// Triangular solve with multiple right-hand sides.
///   side == Left:  solve op(A) * X = alpha * B,  A m-by-m, B m-by-n
///   side == Right: solve X * op(A) = alpha * B,  A n-by-n, B m-by-n
/// X overwrites B.
template <typename T>
void trsm(Side side, Uplo uplo, Op op, Diag diag, T alpha,
          Tile<T> const& A, Tile<T> const& B) {
    int const m = B.mb();
    int const n = B.nb();
    int const na = (side == Side::Left) ? m : n;
    tbp_require(A.mb() == na && A.nb() == na);

    // Element of op(A).
    auto a = [&](int i, int j) -> T {
        return (op == Op::NoTrans) ? A(i, j) : apply_op(op, A(j, i));
    };
    // Is op(A) effectively upper triangular?
    bool const eff_upper = (uplo == Uplo::Upper) == (op == Op::NoTrans);

    if (alpha != T(1)) {
        for (int j = 0; j < n; ++j)
            for (int i = 0; i < m; ++i)
                B(i, j) = (alpha == T(0)) ? T(0) : alpha * B(i, j);
    }

    if (side == Side::Left) {
        for (int j = 0; j < n; ++j) {
            if (!eff_upper) {
                for (int i = 0; i < m; ++i) {
                    T x = B(i, j);
                    for (int l = 0; l < i; ++l)
                        x -= a(i, l) * B(l, j);
                    B(i, j) = (diag == Diag::Unit) ? x : x / a(i, i);
                }
            } else {
                for (int i = m - 1; i >= 0; --i) {
                    T x = B(i, j);
                    for (int l = i + 1; l < m; ++l)
                        x -= a(i, l) * B(l, j);
                    B(i, j) = (diag == Diag::Unit) ? x : x / a(i, i);
                }
            }
        }
    } else {
        // X * op(A) = B: column j of B couples X columns l with a(l, j) != 0.
        if (eff_upper) {
            for (int j = 0; j < n; ++j) {
                for (int l = 0; l < j; ++l) {
                    T const alj = a(l, j);
                    if (alj == T(0))
                        continue;
                    for (int i = 0; i < m; ++i)
                        B(i, j) -= B(i, l) * alj;
                }
                if (diag == Diag::NonUnit) {
                    T const d = a(j, j);
                    for (int i = 0; i < m; ++i)
                        B(i, j) /= d;
                }
            }
        } else {
            for (int j = n - 1; j >= 0; --j) {
                for (int l = j + 1; l < n; ++l) {
                    T const alj = a(l, j);
                    if (alj == T(0))
                        continue;
                    for (int i = 0; i < m; ++i)
                        B(i, j) -= B(i, l) * alj;
                }
                if (diag == Diag::NonUnit) {
                    T const d = a(j, j);
                    for (int i = 0; i < m; ++i)
                        B(i, j) /= d;
                }
            }
        }
    }
}

/// Triangular matrix-matrix multiply, left side only (all TBP call sites):
///   B := alpha * op(A) * B,  A m-by-m triangular, B m-by-n.
template <typename T>
void trmm(Uplo uplo, Op op, Diag diag, T alpha, Tile<T> const& A,
          Tile<T> const& B) {
    int const m = B.mb();
    int const n = B.nb();
    tbp_require(A.mb() == m && A.nb() == m);

    auto a = [&](int i, int j) -> T {
        return (op == Op::NoTrans) ? A(i, j) : apply_op(op, A(j, i));
    };
    bool const eff_upper = (uplo == Uplo::Upper) == (op == Op::NoTrans);

    for (int j = 0; j < n; ++j) {
        if (eff_upper) {
            // Row i of the product uses B rows >= i: process top-down.
            for (int i = 0; i < m; ++i) {
                T x = (diag == Diag::Unit) ? B(i, j) : a(i, i) * B(i, j);
                for (int l = i + 1; l < m; ++l)
                    x += a(i, l) * B(l, j);
                B(i, j) = alpha * x;
            }
        } else {
            // Row i uses B rows <= i: process bottom-up.
            for (int i = m - 1; i >= 0; --i) {
                T x = (diag == Diag::Unit) ? B(i, j) : a(i, i) * B(i, j);
                for (int l = 0; l < i; ++l)
                    x += a(i, l) * B(l, j);
                B(i, j) = alpha * x;
            }
        }
    }
}

}  // namespace tbp::blas
