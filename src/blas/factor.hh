// Sequential tile-level Cholesky factorization.

#pragma once

#include <cmath>

#include "blas/kernel/stats.hh"
#include "common/error.hh"
#include "common/flops.hh"
#include "common/types.hh"
#include "matrix/tile.hh"

namespace tbp::blas {

/// Cholesky factorization of a Hermitian positive definite tile:
///   uplo == Lower: A = L * L^H, L overwrites the lower triangle.
///   uplo == Upper: A = U^H * U, U overwrites the upper triangle.
/// Throws tbp::Error if a non-positive pivot is met (matrix not HPD), as
/// xPOTRF reports via info > 0; QDWH relies on this signal never firing once
/// the iterate is well-conditioned.
template <typename T>
void potrf(Uplo uplo, Tile<T> const& A) {
    using R = real_t<T>;
    int const n = A.mb();
    tbp_require(A.nb() == n);

    if (uplo == Uplo::Lower) {
        for (int j = 0; j < n; ++j) {
            R djj = real_part(A(j, j));
            for (int k = 0; k < j; ++k)
                djj -= abs_sq(A(j, k));
            if (!(djj > R(0)))
                tbp_throw("potrf: matrix is not positive definite");
            R const ljj = std::sqrt(djj);
            A(j, j) = from_real<T>(ljj);
            for (int i = j + 1; i < n; ++i) {
                T x = A(i, j);
                for (int k = 0; k < j; ++k)
                    x -= A(i, k) * conj_val(A(j, k));
                A(i, j) = x / from_real<T>(ljj);
            }
        }
    } else {
        for (int j = 0; j < n; ++j) {
            R djj = real_part(A(j, j));
            for (int k = 0; k < j; ++k)
                djj -= abs_sq(A(k, j));
            if (!(djj > R(0)))
                tbp_throw("potrf: matrix is not positive definite");
            R const ujj = std::sqrt(djj);
            A(j, j) = from_real<T>(ujj);
            for (int i = j + 1; i < n; ++i) {
                T x = A(j, i);
                for (int k = 0; k < j; ++k)
                    x -= conj_val(A(k, j)) * A(k, i);
                A(j, i) = x / from_real<T>(ujj);
            }
        }
    }

    kernel::count_flops(flops::potrf(n) * (fma_flops<T>() / 2.0),
                        prec::charge_prec<T>());
}

}  // namespace tbp::blas
