// Householder kernels for the PLASMA/SLATE-style flat-tree tile QR:
//
//   larfg  - generate one elementary reflector (zlarfg convention)
//   geqrt  - QR of a single tile with a compact WY T factor
//   unmqr  - apply the geqrt reflector block (larfb) to a tile
//   tsqrt  - triangle-on-top-of-square QR (the communication-avoiding step)
//   tsmqr  - apply the tsqrt reflector block to a tile pair
//
// Conventions (matching LAPACK):
//   H = I - tau * v * v^H,  v(0) = 1,  H^H * x = beta * e1 with beta real.
//   Q = H_1 * H_2 * ... * H_k = I - V * T * V^H with T upper triangular.
// The factorization loop applies H^H from the left, so A = Q * R.
//
// The appliers (unmqr, tsmqr) are GEMM-shaped: both are compact-WY products
// C -= V op(T) V^H C. Each has a *_naive elementwise reference and a level-3
// form (copy + trmm on the triangular factors + GEMM on the dense blocks)
// that routes the bulk of the flops through the packed micro-kernel layer;
// the shared entry point dispatches on size / TBP_NAIVE_BLAS and charges the
// aggregate flops to the measured-rate counter.

#pragma once

#include <cmath>
#include <vector>

#include "blas/gemm.hh"
#include "blas/kernel/arena.hh"
#include "blas/kernel/params.hh"
#include "blas/kernel/stats.hh"
#include "blas/level3.hh"
#include "blas/util.hh"
#include "common/error.hh"
#include "common/flops.hh"
#include "common/types.hh"
#include "matrix/tile.hh"

namespace tbp::blas {

/// Generate a Householder reflector for the vector [alpha; x] of length
/// 1 + n_tail such that (I - tau v v^H)^H [alpha; x] = [beta; 0] with beta
/// real. On return x holds the tail of v (v(0) = 1 implicit), alpha is
/// untouched; returns {beta, tau}.
template <typename T>
struct LarfgResult {
    real_t<T> beta;
    T tau;
};

template <typename T>
LarfgResult<T> larfg(T alpha, int n_tail, T* x, int incx = 1) {
    using R = real_t<T>;
    R xnorm_sq(0);
    for (int i = 0; i < n_tail; ++i)
        xnorm_sq += abs_sq(x[i * incx]);

    R const alpha_re = real_part(alpha);
    R alpha_im(0);
    if constexpr (is_complex_v<T>)
        alpha_im = alpha.imag();

    if (xnorm_sq == R(0) && alpha_im == R(0)) {
        // Already in the desired form; H = I.
        return {alpha_re, T(0)};
    }

    R beta = std::sqrt(alpha_re * alpha_re + alpha_im * alpha_im + xnorm_sq);
    if (alpha_re > R(0))
        beta = -beta;

    T tau;
    if constexpr (is_complex_v<T>)
        tau = T((beta - alpha_re) / beta, -alpha_im / beta);
    else
        tau = (beta - alpha) / beta;

    T const scal = T(1) / (alpha - from_real<T>(beta));
    for (int i = 0; i < n_tail; ++i)
        x[i * incx] *= scal;

    return {beta, tau};
}

/// QR factorization of tile A (mb-by-nb, mb >= 1). On return the upper
/// triangle of A holds R, the strict lower triangle holds the reflector
/// vectors V (unit diagonal implicit), and T (k-by-k upper triangular with
/// k = min(mb, nb)) holds the compact WY factor: Q = I - V T V^H.
template <typename T>
void geqrt(Tile<T> const& A, Tile<T> const& Tf) {
    int const mb = A.mb();
    int const nb = A.nb();
    int const k = std::min(mb, nb);
    tbp_require(Tf.mb() >= k && Tf.nb() >= k);

    std::vector<T> tau(k);
    for (int j = 0; j < k; ++j) {
        // Reflector from column j, rows j..mb-1.
        auto r = larfg(A(j, j), mb - 1 - j, &A(std::min(j + 1, mb - 1), j));
        tau[j] = r.tau;
        A(j, j) = from_real<T>(r.beta);

        // Apply H_j^H = I - conj(tau) v v^H to A(j:mb, j+1:nb).
        T const ctau = conj_val(r.tau);
        if (ctau != T(0)) {
            for (int c = j + 1; c < nb; ++c) {
                T w = A(j, c);  // v(0) = 1
                for (int i = j + 1; i < mb; ++i)
                    w += conj_val(A(i, j)) * A(i, c);
                w *= ctau;
                A(j, c) -= w;
                for (int i = j + 1; i < mb; ++i)
                    A(i, c) -= A(i, j) * w;
            }
        }
    }

    // Build T (forward columnwise larft):
    //   T(j, j)    = tau_j
    //   T(0:j, j)  = -tau_j * T(0:j, 0:j) * (V(:, 0:j)^H v_j)
    for (int j = 0; j < k; ++j) {
        Tf(j, j) = tau[j];
        if (tau[j] == T(0)) {
            for (int i = 0; i < j; ++i)
                Tf(i, j) = T(0);
            continue;
        }
        // z_i = V(:, i)^H v_j = conj(V(j, i)) + sum_{r > j} conj(A(r, i)) A(r, j)
        for (int i = 0; i < j; ++i) {
            T z = conj_val(A(j, i));
            for (int r = j + 1; r < mb; ++r)
                z += conj_val(A(r, i)) * A(r, j);
            Tf(i, j) = -tau[j] * z;
        }
        // T(0:j, j) = T(0:j, 0:j) * T(0:j, j) (in-place upper-triangular mv).
        for (int i = 0; i < j; ++i) {
            T s(0);
            for (int l = i; l < j; ++l)
                s += Tf(i, l) * Tf(l, j);
            Tf(i, j) = s;
        }
        // Zero the strictly lower part of column j so T can be used whole.
        for (int i = j + 1; i < Tf.mb(); ++i)
            Tf(i, j) = T(0);
    }

    kernel::count_flops(flops::geqrf(mb, nb) * (fma_flops<T>() / 2.0),
                        prec::charge_prec<T>());
}

/// Apply the block reflector from geqrt(V, T) to tile C from the left
/// (reference element loops):
///   op == ConjTrans: C := Q^H C = C - V T^H V^H C
///   op == NoTrans:   C := Q   C = C - V T   V^H C
/// V is the tile that geqrt factored (reflectors in its strict lower part,
/// unit diagonal implicit), k = min(V.mb, V.nb) reflectors.
template <typename T>
void unmqr_naive(Op op, Tile<T> const& V, Tile<T> const& Tf,
                 Tile<T> const& C) {
    int const mb = V.mb();
    int const k = std::min(mb, V.nb());
    int const nn = C.nb();
    tbp_require(C.mb() == mb);
    tbp_require(op == Op::NoTrans || op == Op::ConjTrans);

    // W = V^H C  (k-by-nn), with V unit-lower-trapezoidal.
    std::vector<T> W(static_cast<size_t>(k) * nn);
    auto w = [&](int i, int j) -> T& { return W[i + static_cast<size_t>(j) * k]; };
    for (int j = 0; j < nn; ++j) {
        for (int i = 0; i < k; ++i) {
            T s = C(i, j);  // unit diagonal of V
            for (int r = i + 1; r < mb; ++r)
                s += conj_val(V(r, i)) * C(r, j);
            w(i, j) = s;
        }
    }

    // W := op(T) W with T upper triangular (op(T) = T or T^H).
    for (int j = 0; j < nn; ++j) {
        if (op == Op::NoTrans) {
            for (int i = 0; i < k; ++i) {
                T s(0);
                for (int l = i; l < k; ++l)
                    s += Tf(i, l) * w(l, j);
                w(i, j) = s;
            }
        } else {
            // T^H is lower triangular: compute bottom-up.
            for (int i = k - 1; i >= 0; --i) {
                T s(0);
                for (int l = 0; l <= i; ++l)
                    s += conj_val(Tf(l, i)) * w(l, j);
                w(i, j) = s;
            }
        }
    }

    // C := C - V W.
    for (int j = 0; j < nn; ++j) {
        for (int i = 0; i < k; ++i)
            C(i, j) -= w(i, j);  // unit diagonal
        for (int r = 0; r < mb; ++r) {
            // strict lower part: C(r, j) -= sum_{i < min(r, k)} V(r, i) w(i, j)
            T s(0);
            int const ilim = std::min(r, k);
            for (int i = 0; i < ilim; ++i)
                s += V(r, i) * w(i, j);
            C(r, j) -= s;
        }
    }
}

/// Level-3 unmqr: split V = [V1; V2] with V1 unit lower triangular (k-by-k)
/// and V2 dense, then
///   W  = op(T) * (V1^H C1 + V2^H C2)   (trmm + GEMM)
///   C1 -= V1 * W,  C2 -= V2 * W        (trmm + GEMM)
/// Workspaces come from the calling thread's arena (kWork0/kWork1); the
/// GEMM panels go through the packed micro-kernel layer.
template <typename T>
void unmqr_level3(Op op, Tile<T> const& V, Tile<T> const& Tf,
                  Tile<T> const& C) {
    int const mb = V.mb();
    int const k = std::min(mb, V.nb());
    int const nn = C.nb();
    tbp_require(C.mb() == mb);
    tbp_require(op == Op::NoTrans || op == Op::ConjTrans);
    if (k == 0 || nn == 0)
        return;

    auto& arena = kernel::tls_arena<T>();
    std::size_t const wcount = static_cast<std::size_t>(k) * nn;
    Tile<T> W(arena.get(kernel::kWork0, wcount), k, nn, k);
    Tile<T> W2(arena.get(kernel::kWork1, wcount), k, nn, k);
    auto V1 = V.sub(0, 0, k, k);
    auto C1 = C.sub(0, 0, k, nn);

    // W := V^H C = V1^H C1 + V2^H C2.
    copy(C1, W);
    trmm_dispatch(Uplo::Lower, Op::ConjTrans, Diag::Unit, T(1), V1, W);
    if (mb > k)
        gemm_dispatch(Op::ConjTrans, Op::NoTrans, T(1), V.sub(k, 0, mb - k, k),
                      C.sub(k, 0, mb - k, nn), T(1), W);

    // W := op(T) W.
    trmm_dispatch(Uplo::Upper,
                  (op == Op::NoTrans) ? Op::NoTrans : Op::ConjTrans,
                  Diag::NonUnit, T(1), Tf.sub(0, 0, k, k), W);

    // C1 -= V1 W (via W2 so W stays intact for the V2 update), C2 -= V2 W.
    copy(W, W2);
    trmm_dispatch(Uplo::Lower, Op::NoTrans, Diag::Unit, T(1), V1, W2);
    add(T(-1), W2, T(1), C1);
    if (mb > k)
        gemm_dispatch(Op::NoTrans, Op::NoTrans, T(-1), V.sub(k, 0, mb - k, k),
                      W, T(1), C.sub(k, 0, mb - k, nn));
}

template <typename T>
void unmqr(Op op, Tile<T> const& V, Tile<T> const& Tf, Tile<T> const& C) {
    int const mb = V.mb();
    int const k = std::min(mb, V.nb());
    int const nn = C.nb();
    double const volume = static_cast<double>(mb) * k * nn;
    if (kernel::use_naive() || volume < 4.0 * kernel::kGemmCrossover)
        unmqr_naive(op, V, Tf, C);
    else
        unmqr_level3(op, V, Tf, C);
    kernel::count_flops(flops::unmqr(mb, nn, k) * (fma_flops<T>() / 2.0),
                        prec::charge_prec<T>());
}

/// Triangle-on-top-of-square QR: factor [R1; A2] where R1 = upper triangle
/// of A1 (n-by-n, n = A1.nb, A1.mb >= n) and A2 is m2-by-n dense.
/// On return the upper triangle of A1 holds the new R, A2 holds V2 (the
/// dense part of the reflectors; the top part of each v_j is e_j), and Tf
/// the compact WY factor.
template <typename T>
void tsqrt(Tile<T> const& A1, Tile<T> const& A2, Tile<T> const& Tf) {
    int const n = A1.nb();
    int const m2 = A2.mb();
    tbp_require(A1.mb() >= n && A2.nb() == n);
    tbp_require(Tf.mb() >= n && Tf.nb() >= n);

    std::vector<T> tau(n);
    for (int j = 0; j < n; ++j) {
        auto r = larfg(A1(j, j), m2, &A2(0, j));
        tau[j] = r.tau;
        A1(j, j) = from_real<T>(r.beta);

        T const ctau = conj_val(r.tau);
        if (ctau != T(0)) {
            for (int c = j + 1; c < n; ++c) {
                // w = e_j^H A1(:, c) + v2^H A2(:, c)
                T w = A1(j, c);
                for (int i = 0; i < m2; ++i)
                    w += conj_val(A2(i, j)) * A2(i, c);
                w *= ctau;
                A1(j, c) -= w;
                for (int i = 0; i < m2; ++i)
                    A2(i, c) -= A2(i, j) * w;
            }
        }
    }

    // T factor: top parts of the v's are orthonormal e_j's, so only V2
    // contributes to the inner products.
    for (int j = 0; j < n; ++j) {
        Tf(j, j) = tau[j];
        for (int i = 0; i < j; ++i) {
            T z(0);
            for (int r = 0; r < m2; ++r)
                z += conj_val(A2(r, i)) * A2(r, j);
            Tf(i, j) = -tau[j] * z;
        }
        for (int i = 0; i < j; ++i) {
            T s(0);
            for (int l = i; l < j; ++l)
                s += Tf(i, l) * Tf(l, j);
            Tf(i, j) = s;
        }
        for (int i = j + 1; i < Tf.mb(); ++i)
            Tf(i, j) = T(0);
    }

    kernel::count_flops(flops::tsqrt(m2, n) * (fma_flops<T>() / 2.0),
                        prec::charge_prec<T>());
}

/// Apply the tsqrt block reflector to the tile pair [C1; C2] (reference
/// element loops):
///   op == ConjTrans: [C1; C2] := Q^H [C1; C2]
///   op == NoTrans:   [C1; C2] := Q   [C1; C2]
/// where Q = I - [E; V2] T [E; V2]^H, E = [I_n; 0] occupying the first n
/// rows of C1. V2 is m2-by-n (from tsqrt), C1 is (>= n)-by-nn, C2 m2-by-nn.
template <typename T>
void tsmqr_naive(Op op, Tile<T> const& V2, Tile<T> const& Tf,
                 Tile<T> const& C1, Tile<T> const& C2) {
    int const n = V2.nb();
    int const m2 = V2.mb();
    int const nn = C1.nb();
    tbp_require(C1.mb() >= n && C2.nb() == nn && C2.mb() == m2);
    tbp_require(op == Op::NoTrans || op == Op::ConjTrans);

    // S = C1(0:n, :) + V2^H C2   (n-by-nn)
    std::vector<T> S(static_cast<size_t>(n) * nn);
    auto s_ = [&](int i, int j) -> T& { return S[i + static_cast<size_t>(j) * n]; };
    for (int j = 0; j < nn; ++j) {
        for (int i = 0; i < n; ++i) {
            T s = C1(i, j);
            for (int r = 0; r < m2; ++r)
                s += conj_val(V2(r, i)) * C2(r, j);
            s_(i, j) = s;
        }
    }

    // S := op(T) S.
    for (int j = 0; j < nn; ++j) {
        if (op == Op::NoTrans) {
            for (int i = 0; i < n; ++i) {
                T s(0);
                for (int l = i; l < n; ++l)
                    s += Tf(i, l) * s_(l, j);
                s_(i, j) = s;
            }
        } else {
            for (int i = n - 1; i >= 0; --i) {
                T s(0);
                for (int l = 0; l <= i; ++l)
                    s += conj_val(Tf(l, i)) * s_(l, j);
                s_(i, j) = s;
            }
        }
    }

    // [C1; C2] -= [E; V2] S.
    for (int j = 0; j < nn; ++j) {
        for (int i = 0; i < n; ++i)
            C1(i, j) -= s_(i, j);
        for (int r = 0; r < m2; ++r) {
            T acc(0);
            for (int i = 0; i < n; ++i)
                acc += V2(r, i) * s_(i, j);
            C2(r, j) -= acc;
        }
    }
}

/// Level-3 tsmqr: the top of the reflector block is the identity, so
///   S  = op(T) * (C1(0:n, :) + V2^H C2)   (GEMM + trmm)
///   C1(0:n, :) -= S,  C2 -= V2 * S        (add + GEMM)
/// with the two m2-deep GEMM panels carrying essentially all the flops.
template <typename T>
void tsmqr_level3(Op op, Tile<T> const& V2, Tile<T> const& Tf,
                  Tile<T> const& C1, Tile<T> const& C2) {
    int const n = V2.nb();
    int const m2 = V2.mb();
    int const nn = C1.nb();
    tbp_require(C1.mb() >= n && C2.nb() == nn && C2.mb() == m2);
    tbp_require(op == Op::NoTrans || op == Op::ConjTrans);
    if (n == 0 || nn == 0)
        return;

    auto& arena = kernel::tls_arena<T>();
    Tile<T> S(arena.get(kernel::kWork0, static_cast<std::size_t>(n) * nn), n,
              nn, n);
    auto C1t = C1.sub(0, 0, n, nn);

    copy(C1t, S);
    if (m2 > 0)
        gemm_dispatch(Op::ConjTrans, Op::NoTrans, T(1), V2, C2, T(1), S);
    trmm_dispatch(Uplo::Upper,
                  (op == Op::NoTrans) ? Op::NoTrans : Op::ConjTrans,
                  Diag::NonUnit, T(1), Tf.sub(0, 0, n, n), S);
    add(T(-1), S, T(1), C1t);
    if (m2 > 0)
        gemm_dispatch(Op::NoTrans, Op::NoTrans, T(-1), V2, S, T(1), C2);
}

template <typename T>
void tsmqr(Op op, Tile<T> const& V2, Tile<T> const& Tf,
           Tile<T> const& C1, Tile<T> const& C2) {
    int const n = V2.nb();
    int const m2 = V2.mb();
    int const nn = C1.nb();
    double const volume = static_cast<double>(m2 + n) * n * nn;
    if (kernel::use_naive() || volume < 4.0 * kernel::kGemmCrossover)
        tsmqr_naive(op, V2, Tf, C1, C2);
    else
        tsmqr_level3(op, V2, Tf, C1, C2);
    kernel::count_flops(flops::tsmqr(m2, n, nn) * (fma_flops<T>() / 2.0),
                        prec::charge_prec<T>());
}

/// Triangle-on-top-of-triangle QR: factor [R1; R2] where R1 = upper
/// triangle of A1 (n-by-n, n = A1.nb, A1.mb >= n) and R2 = the upper
/// trapezoid of A2 (m2-by-n, m2 <= n) — the fold of the QDWH identity
/// block's diagonal tile, which stays upper triangular throughout the
/// stacked factorization. Column j of R2 has t_j = min(j + 1, m2) nonzero
/// rows, so its reflector tail has length t_j; everything below the
/// trapezoid is neither read nor written (callers may leave it stale).
/// On return: the new R in A1's upper triangle, V2 in A2's upper trapezoid
/// (non-unit diagonal; the implicit unit lives in R1's row j as e_j), and
/// Tf the compact WY factor. ~2.5x fewer flops than tsqrt on the same tile.
template <typename T>
void ttqrt(Tile<T> const& A1, Tile<T> const& A2, Tile<T> const& Tf) {
    int const n = A1.nb();
    int const m2 = A2.mb();
    tbp_require(A1.mb() >= n && A2.nb() == n && m2 <= n);
    tbp_require(Tf.mb() >= n && Tf.nb() >= n);

    std::vector<T> tau(n);
    for (int j = 0; j < n; ++j) {
        int const tj = std::min(j + 1, m2);
        auto r = larfg(A1(j, j), tj, &A2(0, j));
        tau[j] = r.tau;
        A1(j, j) = from_real<T>(r.beta);

        T const ctau = conj_val(r.tau);
        if (ctau != T(0)) {
            for (int c = j + 1; c < n; ++c) {
                // Column c's trapezoid has t_c >= t_j rows, so the update
                // stays inside the structure (fill never leaks downward).
                T w = A1(j, c);
                for (int i = 0; i < tj; ++i)
                    w += conj_val(A2(i, j)) * A2(i, c);
                w *= ctau;
                A1(j, c) -= w;
                for (int i = 0; i < tj; ++i)
                    A2(i, c) -= A2(i, j) * w;
            }
        }
    }

    // T factor: only the trapezoidal V2 contributes to the inner products
    // (column i has t_i <= t_j stored rows).
    for (int j = 0; j < n; ++j) {
        Tf(j, j) = tau[j];
        for (int i = 0; i < j; ++i) {
            int const ti = std::min(i + 1, m2);
            T z(0);
            for (int r2 = 0; r2 < ti; ++r2)
                z += conj_val(A2(r2, i)) * A2(r2, j);
            Tf(i, j) = -tau[j] * z;
        }
        for (int i = 0; i < j; ++i) {
            T s(0);
            for (int l = i; l < j; ++l)
                s += Tf(i, l) * Tf(l, j);
            Tf(i, j) = s;
        }
        for (int i = j + 1; i < Tf.mb(); ++i)
            Tf(i, j) = T(0);
    }

    kernel::count_flops(flops::ttqrt(m2, n) * (fma_flops<T>() / 2.0),
                        prec::charge_prec<T>());
}

/// Apply the ttqrt block reflector to the tile pair [C1; C2] (reference
/// element loops): Q = I - [E; V2] T [E; V2]^H with V2 upper-trapezoidal
/// (column i has t_i = min(i + 1, m2) stored rows). c2_zero declares C2
/// structurally zero on entry: the V2^H C2 accumulation is skipped and C2
/// is overwritten (never read), which is how the stacked factorization
/// creates the first fill in a trailing identity-block tile without a
/// set-zero sweep.
template <typename T>
void ttmqr_naive(Op op, Tile<T> const& V2, Tile<T> const& Tf,
                 Tile<T> const& C1, Tile<T> const& C2, bool c2_zero) {
    int const n = V2.nb();
    int const m2 = V2.mb();
    int const nn = C1.nb();
    tbp_require(C1.mb() >= n && C2.nb() == nn && C2.mb() == m2);
    tbp_require(op == Op::NoTrans || op == Op::ConjTrans);

    // S = C1(0:n, :) + V2^H C2   (n-by-nn)
    std::vector<T> S(static_cast<size_t>(n) * nn);
    auto s_ = [&](int i, int j) -> T& { return S[i + static_cast<size_t>(j) * n]; };
    for (int j = 0; j < nn; ++j) {
        for (int i = 0; i < n; ++i) {
            T s = C1(i, j);
            if (!c2_zero) {
                int const ti = std::min(i + 1, m2);
                for (int r = 0; r < ti; ++r)
                    s += conj_val(V2(r, i)) * C2(r, j);
            }
            s_(i, j) = s;
        }
    }

    // S := op(T) S.
    for (int j = 0; j < nn; ++j) {
        if (op == Op::NoTrans) {
            for (int i = 0; i < n; ++i) {
                T s(0);
                for (int l = i; l < n; ++l)
                    s += Tf(i, l) * s_(l, j);
                s_(i, j) = s;
            }
        } else {
            for (int i = n - 1; i >= 0; --i) {
                T s(0);
                for (int l = 0; l <= i; ++l)
                    s += conj_val(Tf(l, i)) * s_(l, j);
                s_(i, j) = s;
            }
        }
    }

    // [C1; C2] -= [E; V2] S; row r of V2 is nonzero in columns i >= r.
    for (int j = 0; j < nn; ++j) {
        for (int i = 0; i < n; ++i)
            C1(i, j) -= s_(i, j);
        for (int r = 0; r < m2; ++r) {
            T acc(0);
            for (int i = r; i < n; ++i)
                acc += V2(r, i) * s_(i, j);
            if (c2_zero)
                C2(r, j) = -acc;
            else
                C2(r, j) -= acc;
        }
    }
}

/// Level-3 ttmqr for the square case (m2 == n, the production shape): both
/// V2 products are upper-triangular trmm, so the applier routes through the
/// packed trmm path instead of the dense tsmqr GEMM panels.
template <typename T>
void ttmqr_level3(Op op, Tile<T> const& V2, Tile<T> const& Tf,
                  Tile<T> const& C1, Tile<T> const& C2, bool c2_zero) {
    int const n = V2.nb();
    int const m2 = V2.mb();
    int const nn = C1.nb();
    tbp_require(m2 == n);
    tbp_require(C1.mb() >= n && C2.nb() == nn && C2.mb() == m2);
    tbp_require(op == Op::NoTrans || op == Op::ConjTrans);
    if (n == 0 || nn == 0)
        return;

    auto& arena = kernel::tls_arena<T>();
    std::size_t const wcount = static_cast<std::size_t>(n) * nn;
    Tile<T> S(arena.get(kernel::kWork0, wcount), n, nn, n);
    Tile<T> W(arena.get(kernel::kWork1, wcount), n, nn, n);
    auto C1t = C1.sub(0, 0, n, nn);

    // S = C1(0:n, :) + V2^H C2 (the V2 term via an upper-triangular trmm).
    copy(C1t, S);
    if (!c2_zero) {
        copy(C2, W);
        trmm_dispatch(Uplo::Upper, Op::ConjTrans, Diag::NonUnit, T(1), V2, W);
        add(T(1), W, T(1), S);
    }
    trmm_dispatch(Uplo::Upper,
                  (op == Op::NoTrans) ? Op::NoTrans : Op::ConjTrans,
                  Diag::NonUnit, T(1), Tf.sub(0, 0, n, n), S);
    add(T(-1), S, T(1), C1t);

    // C2 -= V2 S (or C2 := -V2 S when C2 was structurally zero).
    copy(S, W);
    trmm_dispatch(Uplo::Upper, Op::NoTrans, Diag::NonUnit, T(1), V2, W);
    if (c2_zero) {
        copy(W, C2);
        scale(T(-1), C2);
    } else {
        add(T(-1), W, T(1), C2);
    }
}

template <typename T>
void ttmqr(Op op, Tile<T> const& V2, Tile<T> const& Tf, Tile<T> const& C1,
           Tile<T> const& C2, bool c2_zero = false) {
    int const n = V2.nb();
    int const m2 = V2.mb();
    int const nn = C1.nb();
    double const volume = static_cast<double>(2 * n) * n * nn;
    if (kernel::use_naive() || m2 != n
        || volume < 4.0 * kernel::kGemmCrossover)
        ttmqr_naive(op, V2, Tf, C1, C2, c2_zero);
    else
        ttmqr_level3(op, V2, Tf, C1, C2, c2_zero);
    kernel::count_flops(flops::ttmqr(m2, n, nn, c2_zero)
                        * (fma_flops<T>() / 2.0),
                        prec::charge_prec<T>());
}

}  // namespace tbp::blas
