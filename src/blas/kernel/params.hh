// Blocking parameters and path selection for the micro-kernel tile BLAS.
//
// The kernel layer follows the classic GotoBLAS/BLIS decomposition: an
// MR x NR register-blocked micro-kernel at the bottom, fed by A panels packed
// into MC x KC buffers (MR-row strips) and B panels packed into KC x NC
// buffers (NR-column strips). MR x NR is sized so the accumulator block stays
// in vector registers; KC so a packed A strip plus B strip live in L1/L2; MC
// so the packed A panel fits L2.
//
// Retuning: always measure with `bench_gemm_kernel` after any change — the
// auto-vectorizer's register allocation is shape-sensitive in ways simple
// register counting does not predict. Measured example (this container's
// GCC 12, AVX-512 clone): float MR=16/NR=6 collapses to ~2 GF/s while both
// MR=8 and MR=32 at the same NR exceed 45/150 GF/s, and double MR=16 shows
// the same cliff. The shapes below were chosen from isolated micro-kernel
// sweeps and validated on both the AVX-512 and AVX2 clones. MC/KC only
// shift cache behaviour (keep MC a multiple of MR); NC is effectively
// unbounded here because tile dimensions stay in the hundreds.
//
// Complex types use split real/imaginary packing (see pack.hh), so their
// micro-kernels run on contiguous real planes and auto-vectorize like the
// real kernels.

#pragma once

#include <complex>
#include <cstdlib>

namespace tbp::blas::kernel {

template <typename T>
struct Params;

template <>
struct Params<float> {
    static constexpr int MR = 32, NR = 6;
    static constexpr int MC = 128, KC = 320, NC = 4096;
};

template <>
struct Params<double> {
    static constexpr int MR = 8, NR = 6;
    static constexpr int MC = 96, KC = 256, NC = 4096;
};

template <>
struct Params<std::complex<float>> {
    static constexpr int MR = 32, NR = 4;
    static constexpr int MC = 96, KC = 256, NC = 4096;
};

template <>
struct Params<std::complex<double>> {
    static constexpr int MR = 4, NR = 4;
    static constexpr int MC = 64, KC = 192, NC = 4096;
};

/// Diagonal-block size for the blocked (outer solve + GEMM update)
/// formulations of trsm/trmm/herk in level3.hh.
inline constexpr int kL3Block = 64;

/// Below this m*n*k volume the packed path's setup cost is not worth it and
/// the dispatchers use the naive kernels directly.
inline constexpr double kGemmCrossover = 2048;

/// Runtime selection of the naive reference kernels, initialized from the
/// TBP_NAIVE_BLAS environment variable ("0"/unset selects the micro-kernel
/// layer, anything else the naive loops). Mutable so tests and benches can
/// A/B both paths in one process; flip only from a single thread while no
/// kernels are in flight.
inline bool& naive_flag() {
    static bool flag = [] {
        char const* e = std::getenv("TBP_NAIVE_BLAS");
        return e != nullptr && e[0] != '\0' && !(e[0] == '0' && e[1] == '\0');
    }();
    return flag;
}

inline bool use_naive() { return naive_flag(); }
inline void set_naive(bool v) { naive_flag() = v; }

}  // namespace tbp::blas::kernel
