// MR x NR register-blocked micro-kernel bodies.
//
// This translation unit is compiled at -O3 -funroll-loops (see
// src/CMakeLists.txt) while the rest of the tree keeps the default flags,
// and each exported kernel carries GCC target_clones so one binary holds
// AVX-512 / AVX2 / baseline versions selected once at load time by cpuid —
// the portable stand-in for linking a vendor BLAS tuned per machine.
//
// The bodies are written so the compiler's auto-vectorizer does the work:
// fixed MR/NR trip counts, a local accumulator array that maps onto vector
// registers, contiguous packed operands, and __restrict everywhere.
//
// The loop nests are spelled out inside each kernel macro rather than
// factored into a shared template helper: GCC only promotes the accumulator
// array to vector registers when the loops sit directly in the function
// body — routing them through an (even always_inline) helper that takes the
// accumulator by pointer defeats scalar replacement and costs >10x. Measure
// with bench_gemm_kernel before restructuring this file.

#include "blas/kernel/microkernel.hh"

#include "blas/kernel/params.hh"

// target_clones emits an ifunc whose resolver runs before the TSan runtime
// is initialized, which segfaults any instrumented binary at startup (GCC
// 12 + libtsan; reproduce with a 3-line target_clones program under
// -fsanitize=thread). Sanitizer builds measure correctness, not GFLOP/s,
// so they get the un-cloned baseline kernel instead.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__)
#define TBP_KERNEL_CLONES \
    __attribute__((target_clones("arch=x86-64-v4,arch=x86-64-v3,default")))
#else
#define TBP_KERNEL_CLONES
#endif

namespace tbp::blas::kernel {

// Rank-kc update of an MR x NR register block from packed strips, then the
// alpha-scaled store into the m x n (<= MR x NR) top-left corner of C.
#define TBP_REAL_UKERNEL_BODY(T, m, n)                                       \
    constexpr int MR = Params<T>::MR, NR = Params<T>::NR;                    \
    T acc[MR * NR] = {};                                                     \
    for (int l = 0; l < kc; ++l, a += MR, b += NR)                           \
        for (int j = 0; j < NR; ++j)                                         \
            for (int i = 0; i < MR; ++i)                                     \
                acc[i + j * MR] += a[i] * b[j];                              \
    for (int j = 0; j < (n); ++j)                                            \
        for (int i = 0; i < (m); ++i)                                        \
            c[i + j * ldc] += alpha * acc[i + j * MR];

#define TBP_DEFINE_REAL_UKERNEL(T)                                           \
    TBP_KERNEL_CLONES                                                        \
    void ukernel(int kc, T alpha, T const* __restrict a,                     \
                 T const* __restrict b, T* __restrict c, int ldc) {          \
        TBP_REAL_UKERNEL_BODY(T, MR, NR)                                     \
    }                                                                        \
    TBP_KERNEL_CLONES                                                        \
    void ukernel_fringe(int kc, T alpha, T const* __restrict a,              \
                        T const* __restrict b, T* __restrict c, int ldc,     \
                        int m, int n) {                                      \
        TBP_REAL_UKERNEL_BODY(T, m, n)                                       \
    }

// Split-complex rank-kc update: the packed planes hold MR (NR) reals then
// MR (NR) imaginaries per k-step, so both product accumulations run on
// contiguous real vectors and auto-vectorize like the real kernels.
#define TBP_CPLX_UKERNEL_BODY(R, m, n)                                       \
    using C = std::complex<R>;                                               \
    constexpr int MR = Params<C>::MR, NR = Params<C>::NR;                    \
    R acr[MR * NR] = {}, aci[MR * NR] = {};                                  \
    for (int l = 0; l < kc; ++l, a += 2 * MR, b += 2 * NR) {                 \
        for (int j = 0; j < NR; ++j) {                                       \
            R const br = b[j];                                               \
            R const bi = b[NR + j];                                          \
            for (int i = 0; i < MR; ++i) {                                   \
                R const ar = a[i];                                           \
                R const ai = a[MR + i];                                      \
                acr[i + j * MR] += ar * br - ai * bi;                        \
                aci[i + j * MR] += ar * bi + ai * br;                        \
            }                                                                \
        }                                                                    \
    }                                                                        \
    R const alr = alpha.real();                                              \
    R const ali = alpha.imag();                                              \
    for (int j = 0; j < (n); ++j)                                            \
        for (int i = 0; i < (m); ++i) {                                      \
            R const pr = acr[i + j * MR];                                    \
            R const pi = aci[i + j * MR];                                    \
            c[i + j * ldc] += C(alr * pr - ali * pi, alr * pi + ali * pr);   \
        }

#define TBP_DEFINE_CPLX_UKERNEL(R)                                           \
    TBP_KERNEL_CLONES                                                        \
    void ukernel(int kc, std::complex<R> alpha, R const* __restrict a,       \
                 R const* __restrict b, std::complex<R>* __restrict c,       \
                 int ldc) {                                                  \
        TBP_CPLX_UKERNEL_BODY(R, MR, NR)                                     \
    }                                                                        \
    TBP_KERNEL_CLONES                                                        \
    void ukernel_fringe(int kc, std::complex<R> alpha,                       \
                        R const* __restrict a, R const* __restrict b,        \
                        std::complex<R>* __restrict c, int ldc, int m,       \
                        int n) {                                             \
        TBP_CPLX_UKERNEL_BODY(R, m, n)                                       \
    }

TBP_DEFINE_REAL_UKERNEL(float)
TBP_DEFINE_REAL_UKERNEL(double)
TBP_DEFINE_CPLX_UKERNEL(float)
TBP_DEFINE_CPLX_UKERNEL(double)

#undef TBP_DEFINE_REAL_UKERNEL
#undef TBP_DEFINE_CPLX_UKERNEL
#undef TBP_REAL_UKERNEL_BODY
#undef TBP_CPLX_UKERNEL_BODY

}  // namespace tbp::blas::kernel
