// Register-blocked MR x NR GEMM micro-kernels (definitions in
// microkernel.cc, compiled separately at -O3 with runtime ISA dispatch).
//
// Contract: `a` is a packed A strip (kc steps of MR contiguous scalars),
// `b` a packed B strip (kc steps of NR scalars), both zero-padded to full
// MR/NR width by pack.hh. The kernel accumulates the full MR x NR product in
// registers and then updates C (column-major, leading dimension ldc):
//
//   C(0:MR, 0:NR) += alpha * sum_l a_l * b_l^T        (ukernel)
//   C(0:m,  0:n ) += ...   for m <= MR, n <= NR       (ukernel_fringe)
//
// Beta handling is NOT done here — the blocked driver pre-scales C once per
// call (beta == 0 stores zeros unconditionally, clearing NaN/Inf, matching
// the BLAS convention documented in blas/gemm.hh).
//
// Complex kernels take split real/imaginary packed planes (see pack.hh):
// each k-step of `a` is MR reals followed by MR imaginaries (2*MR scalars of
// the real type), likewise `b` with NR — so the inner loops run on
// contiguous real data and auto-vectorize like the real kernels.

#pragma once

#include <complex>

namespace tbp::blas::kernel {

void ukernel(int kc, float alpha, float const* a, float const* b,
             float* c, int ldc);
void ukernel(int kc, double alpha, double const* a, double const* b,
             double* c, int ldc);
void ukernel(int kc, std::complex<float> alpha, float const* a,
             float const* b, std::complex<float>* c, int ldc);
void ukernel(int kc, std::complex<double> alpha, double const* a,
             double const* b, std::complex<double>* c, int ldc);

void ukernel_fringe(int kc, float alpha, float const* a, float const* b,
                    float* c, int ldc, int m, int n);
void ukernel_fringe(int kc, double alpha, double const* a, double const* b,
                    double* c, int ldc, int m, int n);
void ukernel_fringe(int kc, std::complex<float> alpha, float const* a,
                    float const* b, std::complex<float>* c, int ldc,
                    int m, int n);
void ukernel_fringe(int kc, std::complex<double> alpha, double const* a,
                    double const* b, std::complex<double>* c, int ldc,
                    int m, int n);

}  // namespace tbp::blas::kernel
