// Blocked GEMM driver over the packed micro-kernels.
//
// Classic five-loop Goto/BLIS structure: NC column panels of op(B), KC deep
// k-panels (packed once per (jc, pc)), MC row panels of op(A) (packed once
// per (pc, ic)), then the NR x MR register-block sweep calling the
// micro-kernel. Pack buffers come from the calling thread's arena, so a task
// worker allocates at most once per buffer growth, not per tile.
//
// Semantics are identical to blas::gemm_naive (see blas/gemm.hh), including
// the BLAS beta convention: beta == 0 stores zeros without reading C, so
// NaN/Inf in uninitialized C tiles cannot leak into results.
//
// Float-typed gemms consult the thread's execution-time gemm mode
// (prec::exec_gemm_mode):
//   * Bf16     — both operands are truncated to bf16 at pack time and the
//                unchanged fp32 micro-kernel accumulates them (the
//                bf16-in/fp32-accumulate matrix-unit contract).
//   * Bf16Comp — the TPU-paper compensated scheme: with hi = bf16(x) and
//                lo = bf16(x - hi), three truncated passes accumulate
//                hi*hi (carrying beta), then hi*lo and lo*hi with beta = 1;
//                the O(eps_bf16^2) lo*lo term is dropped. Costs ~3x the
//                packing and kernel time of one pass — the precision-aware
//                cost model charges the same flop formula but models the
//                rate, not the count, as 3x.
// Double-typed gemms never consult the mode.

#pragma once

#include <algorithm>

#include "blas/kernel/arena.hh"
#include "blas/kernel/microkernel.hh"
#include "blas/kernel/pack.hh"
#include "blas/kernel/params.hh"
#include "common/error.hh"
#include "common/precision.hh"
#include "common/types.hh"
#include "matrix/tile.hh"

namespace tbp::blas::kernel {

/// BLAS-convention beta scaling: beta == 1 leaves C untouched, beta == 0
/// stores T(0) unconditionally (clearing NaN/Inf), anything else scales.
template <typename T>
inline void scale_beta(T beta, Tile<T> const& C) {
    if (beta == T(1))
        return;
    for (int j = 0; j < C.nb(); ++j)
        for (int i = 0; i < C.mb(); ++i)
            C(i, j) = (beta == T(0)) ? T(0) : beta * C(i, j);
}

namespace detail {

/// Strip base pointers are computed in T units and viewed as real planes for
/// the split-complex kernels (same element count either way, see pack.hh).
template <typename T>
inline auto plane(T const* p) {
    if constexpr (is_complex_v<T>)
        return reinterpret_cast<real_t<T> const*>(p);
    else
        return p;
}

/// One full five-loop accumulation pass with per-operand pack transforms.
/// beta has already been applied by the caller; this pass only accumulates.
template <typename T>
void gemm_pass(Op opA, Op opB, T alpha, Tile<T> const& A, Tile<T> const& B,
               Tile<T> const& C, int k, prec::PackTrans ta,
               prec::PackTrans tb) {
    using P = Params<T>;
    int const m = C.mb();
    int const n = C.nb();

    auto& arena = tls_arena<T>();
    for (int jc = 0; jc < n; jc += P::NC) {
        int const nc = std::min(P::NC, n - jc);
        int const nstrips = (nc + P::NR - 1) / P::NR;
        for (int pc = 0; pc < k; pc += P::KC) {
            int const kc = std::min(P::KC, k - pc);
            T* bbuf = arena.get(kPackB,
                                static_cast<std::size_t>(nstrips) * P::NR * kc);
            pack_b(opB, B, pc, jc, kc, nc, bbuf, tb);
            for (int ic = 0; ic < m; ic += P::MC) {
                int const mc = std::min(P::MC, m - ic);
                int const mstrips = (mc + P::MR - 1) / P::MR;
                T* abuf = arena.get(
                    kPackA, static_cast<std::size_t>(mstrips) * P::MR * kc);
                pack_a(opA, A, ic, pc, mc, kc, abuf, ta);
                for (int jr = 0; jr < nc; jr += P::NR) {
                    int const nr = std::min(P::NR, nc - jr);
                    T const* bp = bbuf
                                  + static_cast<std::size_t>(jr / P::NR) * kc
                                        * P::NR;
                    for (int ir = 0; ir < mc; ir += P::MR) {
                        int const mr = std::min(P::MR, mc - ir);
                        T const* ap = abuf
                                      + static_cast<std::size_t>(ir / P::MR)
                                            * kc * P::MR;
                        T* cp = &C(ic + ir, jc + jr);
                        if (mr == P::MR && nr == P::NR)
                            ukernel(kc, alpha, detail::plane(ap),
                                    detail::plane(bp), cp, C.ld());
                        else
                            ukernel_fringe(kc, alpha, detail::plane(ap),
                                           detail::plane(bp), cp, C.ld(), mr,
                                           nr);
                    }
                }
            }
        }
    }
}

}  // namespace detail

/// C := alpha * op(A) * op(B) + beta * C through the packed micro-kernel.
/// Dimension contract matches blas::gemm.
template <typename T>
void gemm(Op opA, Op opB, T alpha, Tile<T> const& A, Tile<T> const& B,
          T beta, Tile<T> const& C) {
    int const m = C.mb();
    int const n = C.nb();
    int const k = (opA == Op::NoTrans) ? A.nb() : A.mb();

    tbp_require(((opA == Op::NoTrans) ? A.mb() : A.nb()) == m);
    tbp_require(((opB == Op::NoTrans) ? B.mb() : B.nb()) == k);
    tbp_require(((opB == Op::NoTrans) ? B.nb() : B.mb()) == n);

    scale_beta(beta, C);
    if (alpha == T(0) || k == 0)
        return;

    auto mode = prec::GemmMode::Native;
    if constexpr (std::is_same_v<real_t<T>, float>)
        mode = prec::exec_gemm_mode();

    using PT = prec::PackTrans;
    switch (mode) {
        case prec::GemmMode::Native:
            detail::gemm_pass(opA, opB, alpha, A, B, C, k, PT::None, PT::None);
            break;
        case prec::GemmMode::Bf16:
            detail::gemm_pass(opA, opB, alpha, A, B, C, k, PT::Bf16Hi,
                              PT::Bf16Hi);
            break;
        case prec::GemmMode::Bf16Comp:
            detail::gemm_pass(opA, opB, alpha, A, B, C, k, PT::Bf16Hi,
                              PT::Bf16Hi);
            detail::gemm_pass(opA, opB, alpha, A, B, C, k, PT::Bf16Hi,
                              PT::Bf16Lo);
            detail::gemm_pass(opA, opB, alpha, A, B, C, k, PT::Bf16Lo,
                              PT::Bf16Hi);
            break;
    }
}

}  // namespace tbp::blas::kernel
