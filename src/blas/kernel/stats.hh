// Measured-flop accounting for the tile kernels.
//
// Every public blas:: entry point (gemm, herk, trsm, trmm, unmqr, tsmqr)
// charges its real-flop count here exactly once per call, regardless of
// which implementation path (micro-kernel or naive) ran. The perf layer
// (sched_report, the driver, the benches) snapshots the counter around a
// region of interest and divides by wall time to report the *achieved*
// GFLOP/s next to the machine model's assumed rates — the measured number
// that calibrates cost_model's cpu_core_gflops.
//
// The counter is a single atomic, incremented once per tile-kernel call
// (microseconds of work at minimum), so contention is negligible.

#pragma once

#include <atomic>
#include <cstdint>

namespace tbp::blas::kernel {

inline std::atomic<std::uint64_t>& flop_counter() {
    static std::atomic<std::uint64_t> counter{0};
    return counter;
}

/// Charge `fl` real flops (callers pass complex-weighted counts already).
inline void count_flops(double fl) {
    if (fl > 0)
        flop_counter().fetch_add(static_cast<std::uint64_t>(fl),
                                 std::memory_order_relaxed);
}

/// Total real flops performed by tile kernels since start (or last reset).
inline double flops_performed() {
    return static_cast<double>(flop_counter().load(std::memory_order_relaxed));
}

inline void reset_flops() {
    flop_counter().store(0, std::memory_order_relaxed);
}

}  // namespace tbp::blas::kernel
