// Measured-flop accounting for the tile kernels.
//
// Every public blas:: entry point (gemm, herk, trsm, trmm, potrf, geqrf,
// unmqr, tsqrt, tsmqr, ttqrt, ttmqr) charges its real-flop count here
// exactly once per call, regardless of which implementation path
// (micro-kernel or naive) ran. The perf layer (sched_report, the driver,
// the benches) snapshots the counter around a region of interest and
// divides by wall time to report the *achieved* GFLOP/s next to the
// machine model's assumed rates — the measured number that calibrates
// cost_model's cpu_core_gflops.
//
// Charges are additionally bucketed per precision rung (double / float /
// simulated-bf16, see prec::charge_prec): the bucket is chosen from the
// kernel's scalar type and the thread's execution-time gemm mode, so a
// float kernel running under an active bf16 mode charges the bf16 bucket.
// Each charge truncates its double-valued formula to uint64 exactly once
// and adds the same truncated value to both the total and its bucket,
// keeping total == sum(buckets) an exact invariant that the precision-aware
// cost model replays charge-by-charge.
//
// The counters are plain atomics, incremented once per tile-kernel call
// (microseconds of work at minimum), so contention is negligible.

#pragma once

#include <atomic>
#include <cstdint>

#include "common/precision.hh"

namespace tbp::blas::kernel {

inline std::atomic<std::uint64_t>& flop_counter() {
    static std::atomic<std::uint64_t> counter{0};
    return counter;
}

inline std::atomic<std::uint64_t>& flop_counter(prec::Prec p) {
    static std::atomic<std::uint64_t> counters[prec::kNumPrec]{};
    return counters[static_cast<int>(p)];
}

/// Charge `fl` real flops (callers pass complex-weighted counts already)
/// to the total and to the bucket for precision `p`.
inline void count_flops(double fl, prec::Prec p) {
    if (fl > 0) {
        auto const units = static_cast<std::uint64_t>(fl);
        flop_counter().fetch_add(units, std::memory_order_relaxed);
        flop_counter(p).fetch_add(units, std::memory_order_relaxed);
    }
}

/// Legacy entry: charges the double bucket.
inline void count_flops(double fl) { count_flops(fl, prec::Prec::Double); }

/// Total real flops performed by tile kernels since start (or last reset).
inline double flops_performed() {
    return static_cast<double>(flop_counter().load(std::memory_order_relaxed));
}

/// Real flops charged to precision bucket `p` since start (or last reset).
inline double flops_performed(prec::Prec p) {
    return static_cast<double>(
        flop_counter(p).load(std::memory_order_relaxed));
}

inline void reset_flops() {
    flop_counter().store(0, std::memory_order_relaxed);
    for (int p = 0; p < prec::kNumPrec; ++p)
        flop_counter(static_cast<prec::Prec>(p))
            .store(0, std::memory_order_relaxed);
}

}  // namespace tbp::blas::kernel
