// Packing of tile operands into contiguous, cache-blocked panels.
//
// pack_a lays out an mc x kc block of op(A) as ceil(mc/MR) strips, each strip
// holding kc steps of MR contiguous scalars (the micro-kernel's A operand);
// pack_b lays out a kc x nc block of op(B) as NR-column strips. Both
// zero-pad the last partial strip to full MR/NR width so the micro-kernel
// never needs edge masks — fringe handling happens only on the C store.
//
// The transpose/conjugation of the operand is absorbed here: the micro-kernel
// always sees plain row-strips, so one kernel serves all Op combinations.
//
// Complex scalars are split into real/imaginary planes per k-step
// ([MR reals][MR imags]), which lets the complex micro-kernels vectorize on
// contiguous real data. A strip therefore occupies the same number of
// *complex* elements (kc * MR) whether split or not, so buffer sizing in T
// units is uniform across types.

#pragma once

#include <algorithm>

#include "blas/kernel/params.hh"
#include "common/types.hh"
#include "matrix/tile.hh"

namespace tbp::blas::kernel {

namespace detail {

/// Write mc x kc elements elem(i, l) as MR-row strips into buf.
template <typename T, int BR, typename Elem>
inline void pack_strips(int mc, int kc, Elem&& elem, T* buf) {
    using R = real_t<T>;
    if constexpr (is_complex_v<T>) {
        R* out = reinterpret_cast<R*>(buf);
        for (int ir = 0; ir < mc; ir += BR) {
            int const br = std::min(BR, mc - ir);
            for (int l = 0; l < kc; ++l, out += 2 * BR) {
                for (int i = 0; i < br; ++i) {
                    T const v = elem(ir + i, l);
                    out[i] = v.real();
                    out[BR + i] = v.imag();
                }
                for (int i = br; i < BR; ++i) {
                    out[i] = R(0);
                    out[BR + i] = R(0);
                }
            }
        }
    } else {
        T* out = buf;
        for (int ir = 0; ir < mc; ir += BR) {
            int const br = std::min(BR, mc - ir);
            for (int l = 0; l < kc; ++l, out += BR) {
                for (int i = 0; i < br; ++i)
                    out[i] = elem(ir + i, l);
                for (int i = br; i < BR; ++i)
                    out[i] = T(0);
            }
        }
    }
}

}  // namespace detail

/// Pack rows [i0, i0+mc) x columns [p0, p0+kc) of op(A) into MR strips.
template <typename T>
void pack_a(Op op, Tile<T> const& A, int i0, int p0, int mc, int kc, T* buf) {
    constexpr int MR = Params<T>::MR;
    switch (op) {
        case Op::NoTrans:
            detail::pack_strips<T, MR>(
                mc, kc, [&](int i, int l) { return A(i0 + i, p0 + l); }, buf);
            break;
        case Op::Trans:
            detail::pack_strips<T, MR>(
                mc, kc, [&](int i, int l) { return A(p0 + l, i0 + i); }, buf);
            break;
        case Op::ConjTrans:
            detail::pack_strips<T, MR>(
                mc, kc,
                [&](int i, int l) { return conj_val(A(p0 + l, i0 + i)); },
                buf);
            break;
    }
}

/// Pack rows [p0, p0+kc) x columns [j0, j0+nc) of op(B) into NR strips
/// (strips run over columns; each k-step holds NR column values).
template <typename T>
void pack_b(Op op, Tile<T> const& B, int p0, int j0, int kc, int nc, T* buf) {
    constexpr int NR = Params<T>::NR;
    switch (op) {
        case Op::NoTrans:
            detail::pack_strips<T, NR>(
                nc, kc, [&](int j, int l) { return B(p0 + l, j0 + j); }, buf);
            break;
        case Op::Trans:
            detail::pack_strips<T, NR>(
                nc, kc, [&](int j, int l) { return B(j0 + j, p0 + l); }, buf);
            break;
        case Op::ConjTrans:
            detail::pack_strips<T, NR>(
                nc, kc,
                [&](int j, int l) { return conj_val(B(j0 + j, p0 + l)); },
                buf);
            break;
    }
}

}  // namespace tbp::blas::kernel
