// Packing of tile operands into contiguous, cache-blocked panels.
//
// pack_a lays out an mc x kc block of op(A) as ceil(mc/MR) strips, each strip
// holding kc steps of MR contiguous scalars (the micro-kernel's A operand);
// pack_b lays out a kc x nc block of op(B) as NR-column strips. Both
// zero-pad the last partial strip to full MR/NR width so the micro-kernel
// never needs edge masks — fringe handling happens only on the C store.
//
// The transpose/conjugation of the operand is absorbed here: the micro-kernel
// always sees plain row-strips, so one kernel serves all Op combinations.
//
// Complex scalars are split into real/imaginary planes per k-step
// ([MR reals][MR imags]), which lets the complex micro-kernels vectorize on
// contiguous real data. A strip therefore occupies the same number of
// *complex* elements (kc * MR) whether split or not, so buffer sizing in T
// units is uniform across types.
//
// Simulated bf16 lives here as well: a pack-time value transform
// (prec::PackTrans) truncates each packed float scalar to bf16 with
// round-to-nearest-even (componentwise for complex), or extracts the low
// half for the compensated scheme. The micro-kernel itself is unchanged —
// it accumulates the truncated operands in fp32, which is exactly the
// bf16-in/fp32-accumulate contract of real matrix units. Double-typed packs
// never consult the transform.

#pragma once

#include <algorithm>

#include "blas/kernel/params.hh"
#include "common/precision.hh"
#include "common/types.hh"
#include "matrix/tile.hh"

namespace tbp::blas::kernel {

namespace detail {

/// Apply the pack-time value transform to one scalar. Only float-kind
/// scalars are ever transformed; the double instantiations keep their
/// straight-copy loops.
template <typename T>
inline T pack_value(prec::PackTrans tr, T v) {
    if constexpr (std::is_same_v<T, float>) {
        return prec::apply_pack_trans(tr, v);
    } else if constexpr (std::is_same_v<T, std::complex<float>>) {
        return T(prec::apply_pack_trans(tr, v.real()),
                 prec::apply_pack_trans(tr, v.imag()));
    } else {
        (void)tr;
        return v;
    }
}

/// Write mc x kc elements elem(i, l) as MR-row strips into buf.
template <typename T, int BR, typename Elem>
inline void pack_strips(int mc, int kc, Elem&& elem, T* buf,
                        prec::PackTrans tr = prec::PackTrans::None) {
    using R = real_t<T>;
    if constexpr (is_complex_v<T>) {
        R* out = reinterpret_cast<R*>(buf);
        for (int ir = 0; ir < mc; ir += BR) {
            int const br = std::min(BR, mc - ir);
            for (int l = 0; l < kc; ++l, out += 2 * BR) {
                for (int i = 0; i < br; ++i) {
                    T const v = pack_value<T>(tr, elem(ir + i, l));
                    out[i] = v.real();
                    out[BR + i] = v.imag();
                }
                for (int i = br; i < BR; ++i) {
                    out[i] = R(0);
                    out[BR + i] = R(0);
                }
            }
        }
    } else {
        T* out = buf;
        for (int ir = 0; ir < mc; ir += BR) {
            int const br = std::min(BR, mc - ir);
            for (int l = 0; l < kc; ++l, out += BR) {
                for (int i = 0; i < br; ++i)
                    out[i] = pack_value<T>(tr, elem(ir + i, l));
                for (int i = br; i < BR; ++i)
                    out[i] = T(0);
            }
        }
    }
}

}  // namespace detail

/// Pack rows [i0, i0+mc) x columns [p0, p0+kc) of op(A) into MR strips.
template <typename T>
void pack_a(Op op, Tile<T> const& A, int i0, int p0, int mc, int kc, T* buf,
            prec::PackTrans tr = prec::PackTrans::None) {
    constexpr int MR = Params<T>::MR;
    switch (op) {
        case Op::NoTrans:
            detail::pack_strips<T, MR>(
                mc, kc, [&](int i, int l) { return A(i0 + i, p0 + l); }, buf,
                tr);
            break;
        case Op::Trans:
            detail::pack_strips<T, MR>(
                mc, kc, [&](int i, int l) { return A(p0 + l, i0 + i); }, buf,
                tr);
            break;
        case Op::ConjTrans:
            detail::pack_strips<T, MR>(
                mc, kc,
                [&](int i, int l) { return conj_val(A(p0 + l, i0 + i)); },
                buf, tr);
            break;
    }
}

/// Pack rows [p0, p0+kc) x columns [j0, j0+nc) of op(B) into NR strips
/// (strips run over columns; each k-step holds NR column values).
template <typename T>
void pack_b(Op op, Tile<T> const& B, int p0, int j0, int kc, int nc, T* buf,
            prec::PackTrans tr = prec::PackTrans::None) {
    constexpr int NR = Params<T>::NR;
    switch (op) {
        case Op::NoTrans:
            detail::pack_strips<T, NR>(
                nc, kc, [&](int j, int l) { return B(p0 + l, j0 + j); }, buf,
                tr);
            break;
        case Op::Trans:
            detail::pack_strips<T, NR>(
                nc, kc, [&](int j, int l) { return B(j0 + j, p0 + l); }, buf,
                tr);
            break;
        case Op::ConjTrans:
            detail::pack_strips<T, NR>(
                nc, kc,
                [&](int j, int l) { return conj_val(B(j0 + j, p0 + l)); },
                buf, tr);
            break;
    }
}

}  // namespace tbp::blas::kernel
