// Per-thread reusable buffer arenas for the kernel layer.
//
// The blocked GEMM driver needs two pack buffers per call and the level-3
// Householder appliers need two small workspaces; allocating them per tile
// task would put malloc on the hot path of every worker. Each thread instead
// keeps one arena of named slots that grow monotonically and are reused
// across calls — after warm-up, tile kernels perform zero allocations.
//
// Buffers are 64-byte aligned (aligned_vector) so packed panels start on
// cache-line/vector boundaries. Slots are per-thread, so no synchronization
// is needed; a kernel must not call another kernel that reuses the same slot
// while its own pointer is live (the slot assignments below keep the GEMM
// pack slots disjoint from the Householder workspace slots for exactly that
// reason: unmqr/tsmqr hold W0/W1 across inner gemm/trmm calls).

#pragma once

#include <array>
#include <cstddef>

#include "common/aligned.hh"

namespace tbp::blas::kernel {

enum Slot : int {
    kPackA = 0,   ///< packed A panel (gemm driver only)
    kPackB = 1,   ///< packed B panel (gemm driver only)
    kWork0 = 2,   ///< unmqr/tsmqr W workspace (held across gemm calls)
    kWork1 = 3,   ///< unmqr second workspace
    kNumSlots = 4
};

template <typename T>
class Arena {
public:
    /// Pointer to at least `count` elements in `slot`, reused across calls.
    T* get(Slot slot, std::size_t count) {
        auto& buf = bufs_[slot];
        if (buf.size() < count)
            buf.resize(count);
        return buf.data();
    }

private:
    std::array<aligned_vector<T>, kNumSlots> bufs_;
};

/// The calling thread's arena for scalar type T.
template <typename T>
Arena<T>& tls_arena() {
    thread_local Arena<T> arena;
    return arena;
}

}  // namespace tbp::blas::kernel
