// Sequential tile-level GEMM.
//
// C := alpha * op(A) * op(B) + beta * C, with C m-by-n, op(A) m-by-k,
// op(B) k-by-n. This is the workhorse kernel every tiled algorithm calls per
// tile. Two implementations share the entry point:
//
//   gemm        - dispatcher: routes to the packed register-blocked
//                 micro-kernel layer (blas/kernel/) for non-trivial sizes,
//                 falls back to the naive loops below the crossover or when
//                 TBP_NAIVE_BLAS selects the reference path. Charges the
//                 call's flops to the measured-rate counter (kernel/stats.hh).
//   gemm_naive  - the original strided triple loop, kept as the reference
//                 both paths are tested against.
//
// Beta convention (BLAS semantics, both paths): beta == 0 stores T(0) into C
// unconditionally — C is write-only and pre-existing NaN/Inf in an
// uninitialized tile is cleared, never propagated via 0 * NaN. beta == 1
// leaves C untouched before accumulation.

#pragma once

#include <vector>

#include "blas/kernel/gemm.hh"
#include "blas/kernel/params.hh"
#include "blas/kernel/stats.hh"
#include "common/flops.hh"
#include "common/types.hh"
#include "matrix/tile.hh"

namespace tbp::blas {

template <typename T>
void gemm_naive(Op opA, Op opB, T alpha, Tile<T> const& A, Tile<T> const& B,
                T beta, Tile<T> const& C) {
    int const m = C.mb();
    int const n = C.nb();
    int const k = (opA == Op::NoTrans) ? A.nb() : A.mb();

    tbp_require(((opA == Op::NoTrans) ? A.mb() : A.nb()) == m);
    tbp_require(((opB == Op::NoTrans) ? B.mb() : B.nb()) == k);
    tbp_require(((opB == Op::NoTrans) ? B.nb() : B.mb()) == n);

    // Scale C by beta first so the accumulation loops are uniform.
    // beta == 0 stores zeros unconditionally (see header).
    kernel::scale_beta(beta, C);
    if (alpha == T(0) || k == 0)
        return;

    if (opA == Op::NoTrans && opB == Op::NoTrans) {
        // jli order: stream down columns of C and A.
        for (int j = 0; j < n; ++j) {
            for (int l = 0; l < k; ++l) {
                T const blj = alpha * B(l, j);
                if (blj == T(0))
                    continue;
                for (int i = 0; i < m; ++i)
                    C(i, j) += A(i, l) * blj;
            }
        }
    } else if (opA == Op::NoTrans) {
        // B accessed as op(B)(l, j) = op(B(j, l)).
        for (int j = 0; j < n; ++j) {
            for (int l = 0; l < k; ++l) {
                T const blj = alpha * apply_op(opB, B(j, l));
                if (blj == T(0))
                    continue;
                for (int i = 0; i < m; ++i)
                    C(i, j) += A(i, l) * blj;
            }
        }
    } else if (opB == Op::NoTrans) {
        // op(A)(i, l) = op(A(l, i)): dot products down columns of A and B.
        for (int j = 0; j < n; ++j) {
            for (int i = 0; i < m; ++i) {
                T sum(0);
                for (int l = 0; l < k; ++l)
                    sum += apply_op(opA, A(l, i)) * B(l, j);
                C(i, j) += alpha * sum;
            }
        }
    } else {
        for (int j = 0; j < n; ++j) {
            for (int i = 0; i < m; ++i) {
                T sum(0);
                for (int l = 0; l < k; ++l)
                    sum += apply_op(opA, A(l, i)) * apply_op(opB, B(j, l));
                C(i, j) += alpha * sum;
            }
        }
    }
}

/// Path selection without flop accounting — used by the blocked level-3
/// kernels whose public entry points charge their own (aggregate) counts.
/// A float-typed call under an active bf16 gemm mode always takes the
/// packed path: the bf16 truncation lives in the pack layer, so routing to
/// the naive loops (crossover or TBP_NAIVE_BLAS) would silently run the
/// "bf16" gemm in full fp32.
template <typename T>
void gemm_dispatch(Op opA, Op opB, T alpha, Tile<T> const& A,
                   Tile<T> const& B, T beta, Tile<T> const& C) {
    if constexpr (std::is_same_v<real_t<T>, float>) {
        if (prec::exec_gemm_mode() != prec::GemmMode::Native) {
            kernel::gemm(opA, opB, alpha, A, B, beta, C);
            return;
        }
    }
    int const k = (opA == Op::NoTrans) ? A.nb() : A.mb();
    double const volume =
        static_cast<double>(C.mb()) * C.nb() * static_cast<double>(k);
    if (kernel::use_naive() || volume < kernel::kGemmCrossover)
        gemm_naive(opA, opB, alpha, A, B, beta, C);
    else
        kernel::gemm(opA, opB, alpha, A, B, beta, C);
}

template <typename T>
void gemm(Op opA, Op opB, T alpha, Tile<T> const& A, Tile<T> const& B,
          T beta, Tile<T> const& C) {
    gemm_dispatch(opA, opB, alpha, A, B, beta, C);
    int const k = (opA == Op::NoTrans) ? A.nb() : A.mb();
    kernel::count_flops(flops::gemm(C.mb(), C.nb(), k)
                        * (fma_flops<T>() / 2.0),
                        prec::charge_prec<T>());
}

/// Matrix-vector style product used by gemmA reductions: y := alpha op(A) x
/// + beta y, where x, y are dense column tiles (nb == 1 allowed but general).
template <typename T>
void gemv(Op opA, T alpha, Tile<T> const& A, T const* x, T beta, T* y) {
    int const m = (opA == Op::NoTrans) ? A.mb() : A.nb();
    int const n = (opA == Op::NoTrans) ? A.nb() : A.mb();
    for (int i = 0; i < m; ++i)
        y[i] = (beta == T(0)) ? T(0) : beta * y[i];
    if (opA == Op::NoTrans) {
        for (int j = 0; j < n; ++j) {
            T const xj = alpha * x[j];
            for (int i = 0; i < m; ++i)
                y[i] += A(i, j) * xj;
        }
    } else {
        for (int i = 0; i < m; ++i) {
            T sum(0);
            for (int j = 0; j < n; ++j)
                sum += apply_op(opA, A(j, i)) * x[j];
            y[i] += alpha * sum;
        }
    }
    kernel::count_flops(flops::gemm(m, n, 1) * (fma_flops<T>() / 2.0),
                        prec::charge_prec<T>());
}

}  // namespace tbp::blas
