// Sequential tile-level GEMM.
//
// C := alpha * op(A) * op(B) + beta * C, with C m-by-n, op(A) m-by-k,
// op(B) k-by-n. This is the workhorse kernel every tiled algorithm calls per
// tile; the library has no vendor BLAS, so the kernel is written for decent
// cache behaviour in the common NoTrans x {NoTrans, ConjTrans} cases used by
// the QDWH building blocks.

#pragma once

#include <vector>

#include "common/types.hh"
#include "matrix/tile.hh"

namespace tbp::blas {

template <typename T>
void gemm(Op opA, Op opB, T alpha, Tile<T> const& A, Tile<T> const& B,
          T beta, Tile<T> const& C) {
    int const m = C.mb();
    int const n = C.nb();
    int const k = (opA == Op::NoTrans) ? A.nb() : A.mb();

    tbp_require(((opA == Op::NoTrans) ? A.mb() : A.nb()) == m);
    tbp_require(((opB == Op::NoTrans) ? B.mb() : B.nb()) == k);
    tbp_require(((opB == Op::NoTrans) ? B.nb() : B.mb()) == n);

    // Scale C by beta first so the accumulation loops are uniform.
    if (beta != T(1)) {
        for (int j = 0; j < n; ++j)
            for (int i = 0; i < m; ++i)
                C(i, j) = (beta == T(0)) ? T(0) : beta * C(i, j);
    }
    if (alpha == T(0) || k == 0)
        return;

    if (opA == Op::NoTrans && opB == Op::NoTrans) {
        // jli order: stream down columns of C and A.
        for (int j = 0; j < n; ++j) {
            for (int l = 0; l < k; ++l) {
                T const blj = alpha * B(l, j);
                if (blj == T(0))
                    continue;
                for (int i = 0; i < m; ++i)
                    C(i, j) += A(i, l) * blj;
            }
        }
    } else if (opA == Op::NoTrans) {
        // B accessed as op(B)(l, j) = op(B(j, l)).
        for (int j = 0; j < n; ++j) {
            for (int l = 0; l < k; ++l) {
                T const blj = alpha * apply_op(opB, B(j, l));
                if (blj == T(0))
                    continue;
                for (int i = 0; i < m; ++i)
                    C(i, j) += A(i, l) * blj;
            }
        }
    } else if (opB == Op::NoTrans) {
        // op(A)(i, l) = op(A(l, i)): dot products down columns of A and B.
        for (int j = 0; j < n; ++j) {
            for (int i = 0; i < m; ++i) {
                T sum(0);
                for (int l = 0; l < k; ++l)
                    sum += apply_op(opA, A(l, i)) * B(l, j);
                C(i, j) += alpha * sum;
            }
        }
    } else {
        for (int j = 0; j < n; ++j) {
            for (int i = 0; i < m; ++i) {
                T sum(0);
                for (int l = 0; l < k; ++l)
                    sum += apply_op(opA, A(l, i)) * apply_op(opB, B(j, l));
                C(i, j) += alpha * sum;
            }
        }
    }
}

/// Matrix-vector style product used by gemmA reductions: y := alpha op(A) x
/// + beta y, where x, y are dense column tiles (nb == 1 allowed but general).
template <typename T>
void gemv(Op opA, T alpha, Tile<T> const& A, T const* x, T beta, T* y) {
    int const m = (opA == Op::NoTrans) ? A.mb() : A.nb();
    int const n = (opA == Op::NoTrans) ? A.nb() : A.mb();
    for (int i = 0; i < m; ++i)
        y[i] = (beta == T(0)) ? T(0) : beta * y[i];
    if (opA == Op::NoTrans) {
        for (int j = 0; j < n; ++j) {
            T const xj = alpha * x[j];
            for (int i = 0; i < m; ++i)
                y[i] += A(i, j) * xj;
        }
    } else {
        for (int i = 0; i < m; ++i) {
            T sum(0);
            for (int j = 0; j < n; ++j)
                sum += apply_op(opA, A(j, i)) * x[j];
            y[i] += alpha * sum;
        }
    }
}

}  // namespace tbp::blas
