// Element-wise tile kernels: copy, transpose-copy, scale, add, set, and
// tile-local norm contributions used by the distributed norm reductions.

#pragma once

#include <algorithm>
#include <cmath>

#include "common/types.hh"
#include "matrix/tile.hh"

namespace tbp::blas {

/// B := A (dimensions must match).
template <typename T>
void copy(Tile<T> const& A, Tile<T> const& B) {
    tbp_require(A.mb() == B.mb() && A.nb() == B.nb());
    for (int j = 0; j < A.nb(); ++j)
        for (int i = 0; i < A.mb(); ++i)
            B(i, j) = A(i, j);
}

/// B := op(A) with op in {Trans, ConjTrans}; B is A.nb-by-A.mb.
template <typename T>
void transpose_copy(Op op, Tile<T> const& A, Tile<T> const& B) {
    tbp_require(op != Op::NoTrans);
    tbp_require(A.mb() == B.nb() && A.nb() == B.mb());
    for (int j = 0; j < A.nb(); ++j)
        for (int i = 0; i < A.mb(); ++i)
            B(j, i) = apply_op(op, A(i, j));
}

/// A := alpha * A.
template <typename T>
void scale(T alpha, Tile<T> const& A) {
    for (int j = 0; j < A.nb(); ++j)
        for (int i = 0; i < A.mb(); ++i)
            A(i, j) *= alpha;
}

/// B := alpha * A + beta * B (geadd).
template <typename T>
void add(T alpha, Tile<T> const& A, T beta, Tile<T> const& B) {
    tbp_require(A.mb() == B.mb() && A.nb() == B.nb());
    for (int j = 0; j < A.nb(); ++j)
        for (int i = 0; i < A.mb(); ++i)
            B(i, j) = alpha * A(i, j) + beta * B(i, j);
}

/// A := offdiag everywhere, diag on the diagonal (laset).
template <typename T>
void set(T offdiag, T diag, Tile<T> const& A) {
    for (int j = 0; j < A.nb(); ++j)
        for (int i = 0; i < A.mb(); ++i)
            A(i, j) = (i == j) ? diag : offdiag;
}

/// Max |a_ij| over the tile.
template <typename T>
real_t<T> norm_max(Tile<T> const& A) {
    real_t<T> v(0);
    for (int j = 0; j < A.nb(); ++j)
        for (int i = 0; i < A.mb(); ++i)
            v = std::max(v, std::abs(A(i, j)));
    return v;
}

/// Column absolute sums: col_sums[j] += sum_i |a_ij| (for one-norm).
template <typename T>
void col_abs_sums(Tile<T> const& A, real_t<T>* col_sums) {
    for (int j = 0; j < A.nb(); ++j) {
        real_t<T> s(0);
        for (int i = 0; i < A.mb(); ++i)
            s += std::abs(A(i, j));
        col_sums[j] += s;
    }
}

/// Row absolute sums: row_sums[i] += sum_j |a_ij| (for inf-norm).
template <typename T>
void row_abs_sums(Tile<T> const& A, real_t<T>* row_sums) {
    for (int j = 0; j < A.nb(); ++j)
        for (int i = 0; i < A.mb(); ++i)
            row_sums[i] += std::abs(A(i, j));
}

/// Sum of squared magnitudes of A - s*B (fused convergence-check kernel:
/// reads both tiles, writes neither).
template <typename T>
real_t<T> diff_sum_sq(real_t<T> s, Tile<T> const& A, Tile<T> const& B) {
    tbp_require(A.mb() == B.mb() && A.nb() == B.nb());
    real_t<T> acc(0);
    for (int j = 0; j < A.nb(); ++j)
        for (int i = 0; i < A.mb(); ++i)
            acc += abs_sq(A(i, j) - from_real<T>(s) * B(i, j));
    return acc;
}

/// Sum of squared magnitudes (for the Frobenius norm reduction).
template <typename T>
real_t<T> sum_sq(Tile<T> const& A) {
    real_t<T> s(0);
    for (int j = 0; j < A.nb(); ++j)
        for (int i = 0; i < A.mb(); ++i)
            s += abs_sq(A(i, j));
    return s;
}

}  // namespace tbp::blas
