// Partial-spectrum subspace extraction via the polar decomposition — the
// "light-weight version of the polar decomposition ... to extract the most
// significant singular values/vectors [26] and the negative eigen
// values/vectors [36]" of the paper's introduction, and the building block
// of its future-work partial EVD (Section 8).
//
// For Hermitian A and a splitting point mu not in the spectrum, the polar
// factor of A - mu I is the matrix sign function, and
//
//   P = (sign(A - mu I) + I) / 2
//
// is the orthogonal projector onto the invariant subspace of eigenvalues
// > mu. An orthonormal basis is extracted by a randomized range finder:
// QR of P * Omega with Omega Gaussian of width k = round(trace(P)).

#pragma once

#include <cmath>
#include <cstdint>

#include "core/qdwh.hh"
#include "gen/matgen.hh"
#include "linalg/gemm.hh"
#include "linalg/geqrf.hh"
#include "linalg/util.hh"

namespace tbp {

template <typename T>
struct SubspaceResult {
    TiledMatrix<T> basis;  ///< n x k orthonormal columns spanning the subspace
    std::int64_t dim = 0;  ///< k = number of eigenvalues > mu
    QdwhInfo polar_info;
};

/// Orthonormal basis of the invariant subspace of the Hermitian matrix A
/// associated with eigenvalues greater than mu. mu must separate the
/// spectrum (not equal to an eigenvalue); returns dim = 0 or n with an
/// empty/full basis when every eigenvalue is on one side.
template <typename T>
SubspaceResult<T> qdwh_subspace(rt::Engine& eng, TiledMatrix<T> const& A,
                                real_t<T> mu, int nb_basis = 0,
                                std::uint64_t seed = 99) {
    using R = real_t<T>;
    std::int64_t const n = A.n();
    tbp_require(A.m() == n);
    auto const cols = A.col_tile_sizes();
    int const nb = nb_basis > 0 ? nb_basis : cols.front();

    SubspaceResult<T> out;

    // sign(A - mu I) by QDWH.
    TiledMatrix<T> S = A.clone();
    for (std::int64_t i = 0; i < n; ++i)
        S.at(i, i) -= from_real<T>(mu);
    TiledMatrix<T> H;
    QdwhOptions o;
    o.compute_h = false;
    out.polar_info = qdwh(eng, S, H, o);

    // P = (S + I)/2; k = round(trace P).
    eng.wait();
    R tr(0);
    for (std::int64_t i = 0; i < n; ++i)
        tr += (real_part(S.at(i, i)) + R(1)) / R(2);
    std::int64_t const k = std::llround(static_cast<double>(tr));
    out.dim = std::min<std::int64_t>(std::max<std::int64_t>(k, 0), n);
    if (out.dim == 0)
        return out;

    // Range finder: Y = P * Omega, Omega Gaussian n x k; basis = orth(Y).
    // Omega's row tiling must match A's column tiling for the gemm.
    auto const kcols = TiledMatrix<T>::chop(out.dim, nb);
    TiledMatrix<T> Omega(cols, kcols, A.grid());
    gen::fill_gaussian(eng, Omega, seed);
    TiledMatrix<T> Y(cols, kcols, A.grid());
    // Y = (S Omega + Omega) / 2 — apply P without forming it.
    la::gemm(eng, Op::NoTrans, Op::NoTrans, from_real<T>(R(0.5)), S, Omega,
             T(0), Y);
    la::add(eng, from_real<T>(R(0.5)), Omega, T(1), Y);

    auto Tm = la::alloc_qr_t(Y);
    la::geqrf(eng, Y, Tm);
    out.basis = TiledMatrix<T>(cols, kcols, A.grid());
    la::ungqr(eng, Y, Tm, out.basis);
    eng.wait();
    return out;
}

}  // namespace tbp
