// Precision-ladder policy for QDWH: which rung (simulated bf16 / float /
// native) each iteration runs on, decided from the interval parameter l_k.
//
// The QDWH weight recurrence
//   l_{k+1} = l_k (a + b l_k^2) / (1 + c l_k^2)
// is a pure function of l_0, independent of the matrix data, so the entire
// rung schedule can be *planned* before the loop runs: plan_rungs simulates
// the recurrence in double and assigns a rung per iteration. The same plan
// drives the shared-memory ladder, the distributed ladder, and the
// precision-aware cost model — one source of determinism, which is what
// makes the adaptive schedule reproducible bit-for-bit at fixed inputs and
// identical across process-grid shapes.
//
// Rung admissibility: an iteration executed at unit roundoff u computes its
// output with a backward error of order u, so the singular values of the
// computed iterate can sit up to ~u below the bound l_{k+1} the recurrence
// promises. The schedule (weights, branch selection, iteration count) is
// valid only while that slack is negligible, so a rung is admissible for
// iteration k iff
//
//   u_rung <= rung_safety * l_{k+1}        (exit bound, not entering l_k)
//
// This puts float (u = 2^-24) on essentially every iteration — even the
// first iterations of a kappa = 1e16 run exit with l_{k+1} ~ 1e-5 — and
// puts bf16 (u = 2^-9) on the mid-schedule iterations where the interval
// has already contracted to l_{k+1} >~ 0.2. Running bf16 *early* (tiny
// l_{k+1}) is exactly wrong: the 2^-9 perturbation swamps the sigma_min
// bound, the executed iterate decouples from the planned recurrence, and
// the loop burns straggler iterations the plan never priced.
//
// Tail: the last tail_native planned iterations (and every conv-driven
// straggler) run native. bf16 is additionally barred from the tail_native+1
// iterations before the end: one native Halley step cubes a float-level
// error ((2^-24)^3 << eps64) but not a bf16-level one ((2^-9)^3 ~ 1e-8),
// so the iteration feeding the native tail must be float or better. The
// H = U^H A polish is always native.
//
// The bf16 rungs do commit a backward perturbation of order 2^-9 that later
// native iterations cannot undo (they converge to the polar factor of the
// perturbed iterate): the adaptive ladder's contract is native
// *orthogonality* with a backward error at the lowest executed rung's
// precision — the standard mixed-precision polar trade (see qdwh_mixed for
// the float-only variant, and polar_refine_ns to buy the backward error
// back down when required).

#pragma once

#include <cmath>
#include <complex>
#include <vector>

#include "common/precision.hh"

namespace tbp::prec {

/// Shadow scalar: the float-kind type one rung below T. Float-kind types
/// shadow as themselves (their low rung is bf16 mode on native buffers).
template <typename T>
struct shadow {
    using type = T;
};
template <>
struct shadow<double> {
    using type = float;
};
template <>
struct shadow<std::complex<double>> {
    using type = std::complex<float>;
};

template <typename T>
using shadow_t = typename shadow<T>::type;

/// Requested precision behavior for a polar-decomposition run.
///   Native   — every iteration in the matrix's own scalar type (the
///              pre-ladder behavior).
///   Double   — alias of Native for double-kind types; ignored (native) for
///              float-kind types, which cannot promote.
///   Float    — all iterations on the float rung except the native tail.
///   Bf16     — all iterations on the simulated-bf16 rung except the tail.
///   Adaptive — rung chosen per iteration from l_k (the ladder proper).
enum class Precision : std::uint8_t {
    Native = 0,
    Double = 1,
    Float = 2,
    Bf16 = 3,
    Adaptive = 4,
};

inline char const* precision_name(Precision p) {
    switch (p) {
        case Precision::Native: return "native";
        case Precision::Double: return "double";
        case Precision::Float: return "float";
        case Precision::Bf16: return "bf16";
        case Precision::Adaptive: return "adaptive";
    }
    return "?";
}

/// Unit roundoff of the simulated-bf16 rung (8-bit significand).
inline constexpr double kBf16Roundoff = 0x1p-9;
/// Unit roundoff of the float rung (24-bit significand).
inline constexpr double kFloatRoundoff = 0x1p-24;

struct PrecisionPolicy {
    Precision request = Precision::Native;
    /// Adaptive admissibility safety factor: a rung with unit roundoff u may
    /// run iteration k iff u <= rung_safety * l_{k+1}, i.e. the iteration's
    /// own backward error must be small against the sigma_min bound it is
    /// scheduled to establish (see the header comment).
    double rung_safety = 1e-2;
    /// Force the last `tail_native` planned iterations (and every
    /// conv-driven iteration beyond the plan) onto the native rung.
    int tail_native = 1;
    /// Use the TPU-paper compensated accumulation for bf16 gemms
    /// (hi*hi + hi*lo + lo*hi in fp32; ~3x kernel time, ~1 extra mantissa
    /// digit). Off runs plain truncated bf16.
    bool compensated = false;
    /// Test hook: treat the first attempt of this iteration index (0-based)
    /// as a failed low-precision Cholesky and take the fallback promotion
    /// path. The forced failure happens before any work is submitted, so
    /// flop accounting stays exact. -1 disables.
    int force_fallback_iter = -1;
};

/// Dynamic QDWH weights and the l-update, in double — the exact recurrence
/// of detail::qdwh_impl evaluated at planning precision.
struct QdwhWeights {
    double a = 0, b = 0, c = 0;
    double li_next = 0;
    bool qr = false;  ///< c > 100 selects the QR-based iteration
};

inline QdwhWeights qdwh_weights(double li) {
    QdwhWeights w;
    double const l2 = li * li;
    double const dd = std::cbrt(4.0 * (1.0 - l2) / (l2 * l2));
    double const sqd = std::sqrt(1.0 + dd);
    w.a = sqd + std::sqrt(8.0 - 4.0 * dd + 8.0 * (2.0 - l2) / (l2 * sqd)) / 2.0;
    w.b = (w.a - 1.0) * (w.a - 1.0) / 4.0;
    w.c = w.a + w.b - 1.0;
    w.li_next = li * (w.a + w.b * l2) / (1.0 + w.c * l2);
    w.qr = w.c > 100.0;
    return w;
}

/// One planned iteration: entering l, weights, branch, and assigned rung.
struct RungStep {
    double li_in = 0;
    double a = 0, b = 0, c = 0;
    bool qr = false;
    Prec rung = Prec::Double;
};

/// One rung up: bf16 -> float -> native. Promoting the native rung returns
/// native (callers treat a native failure as terminal).
inline Prec promote(Prec rung, Prec native) {
    if (rung == Prec::Bf16 && native == Prec::Double)
        return Prec::Float;
    return native;
}

/// Does `request` put a run of scalar kind `native` on the ladder at all?
/// Double-kind matrices ladder for Float/Bf16/Adaptive; float-kind ones
/// only for Bf16/Adaptive (they cannot promote above float, and Adaptive
/// degenerates to mid-schedule bf16 rungs + a native float tail).
inline bool ladder_engaged(Precision request, Prec native) {
    switch (request) {
        case Precision::Native:
        case Precision::Double:
            return false;
        case Precision::Float:
            return native == Prec::Double;
        case Precision::Bf16:
        case Precision::Adaptive:
            return true;
    }
    return false;
}

/// Rung for one iteration under `pol`, given the iteration's *exit* bound
/// l_{k+1} and its distance from the end of the plan (0 = last planned
/// iteration) — before the native-tail override. Adaptive picks the
/// cheapest admissible rung: u_rung <= rung_safety * li_next, with bf16
/// additionally barred from the tail_native + 1 final iterations (the
/// single native step that follows can cube a float-level error below
/// eps64, but not a bf16-level one).
inline Prec rung_for(PrecisionPolicy const& pol, double li_next,
                     int steps_from_end, Prec native) {
    Prec r = native;
    switch (pol.request) {
        case Precision::Native:
        case Precision::Double:
            break;
        case Precision::Float:
            r = Prec::Float;
            break;
        case Precision::Bf16:
            r = Prec::Bf16;
            break;
        case Precision::Adaptive:
            if (steps_from_end >= pol.tail_native + 1
                && kBf16Roundoff <= pol.rung_safety * li_next)
                r = Prec::Bf16;
            else if (native == Prec::Double
                     && kFloatRoundoff <= pol.rung_safety * li_next)
                r = Prec::Float;
            break;
    }
    // Never "promote" above native (float-kind runs cap at Float).
    if (native == Prec::Float && r == Prec::Double)
        r = Prec::Float;
    return r;
}

/// Simulate the l-recurrence from l0 until |l - 1| < tol1 (or max_iter) and
/// assign a rung to every planned iteration. Pure double arithmetic: the
/// schedule depends only on (l0, tol1, max_iter, policy), never on matrix
/// data, rank count, or scheduling order. Iterations the runtime executes
/// beyond the plan (convergence-norm stragglers) are native by contract.
inline std::vector<RungStep> plan_rungs(double l0, double tol1, int max_iter,
                                        PrecisionPolicy const& pol,
                                        Prec native) {
    std::vector<RungStep> plan;
    std::vector<double> li_next;  // exit bound of each planned iteration
    double li = l0;
    while (std::abs(li - 1.0) >= tol1
           && static_cast<int>(plan.size()) < max_iter) {
        QdwhWeights const w = qdwh_weights(li);
        RungStep s;
        s.li_in = li;
        s.a = w.a;
        s.b = w.b;
        s.c = w.c;
        s.qr = w.qr;
        plan.push_back(s);
        li = w.li_next;
        li_next.push_back(li);
    }
    // Second pass: rung assignment needs the plan length (bf16 keeps clear
    // of the final iterations) and each iteration's exit bound.
    int const len = static_cast<int>(plan.size());
    for (int k = 0; k < len; ++k)
        plan[static_cast<std::size_t>(k)].rung =
            rung_for(pol, li_next[static_cast<std::size_t>(k)], len - 1 - k,
                     native);
    // Native tail: the last planned iterations run at native precision so
    // the iterate leaves the loop with native-accuracy orthogonality.
    for (int t = 0; t < pol.tail_native && t < len; ++t)
        plan[static_cast<std::size_t>(len - 1 - t)].rung = native;
    return plan;
}

/// Native accounting bucket for scalar kind: Prec::Float for float/cfloat,
/// Prec::Double otherwise.
template <typename T>
inline constexpr Prec native_prec() {
    if constexpr (std::is_same_v<T, float>
                  || std::is_same_v<T, std::complex<float>>) {
        return Prec::Float;
    } else {
        return Prec::Double;
    }
}

}  // namespace tbp::prec
