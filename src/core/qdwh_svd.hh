// SVD and Hermitian EVD through the polar decomposition — the framework of
// Higham & Papadimitriou the paper builds toward (Sections 1, 3, 8):
//
//   A = U_p H            (QDWH, task-parallel, this library's core)
//   H = V Lambda V^H     (Hermitian EVD; dense Jacobi here)
//   A = (U_p V) Lambda V^H = U Sigma V^H
//
// The heavy O(n^3)-per-iteration work runs through the tiled task-parallel
// QDWH; the final EVD of the (well-structured, PSD) H uses the reference
// Jacobi eigensolver. A full spectral divide-and-conquer EVD is the paper's
// future work; the hybrid here matches the QDWH-SVD structure of [41].

#pragma once

#include <algorithm>
#include <vector>

#include "core/qdwh.hh"
#include "ref/dense.hh"
#include "ref/jacobi.hh"

namespace tbp {

template <typename T>
struct QdwhSvdResult {
    ref::Dense<T> U;               ///< m x n, orthonormal columns
    std::vector<real_t<T>> sigma;  ///< descending
    ref::Dense<T> V;               ///< n x n unitary
    QdwhInfo polar_info;
};

/// SVD of a tiled A (m >= n) via polar decomposition + EVD of H.
/// A is overwritten with its polar factor U_p.
template <typename T>
QdwhSvdResult<T> qdwh_svd(rt::Engine& eng, TiledMatrix<T> A,
                          QdwhOptions const& opts = {}) {
    if (A.empty() || A.m() < A.n())
        detail::throw_status("qdwh_svd", Status::InvalidArgument,
                             A.empty() ? 0 : static_cast<long long>(A.m()),
                             A.empty() ? 0 : static_cast<long long>(A.n()),
                             opts.max_iter);
    std::int64_t const m = A.m();
    std::int64_t const n = A.n();

    TiledMatrix<T> H(A.col_tile_sizes(), A.col_tile_sizes(), A.grid());
    QdwhSvdResult<T> out;
    out.polar_info = qdwh(eng, A, H, opts);

    // EVD of H: eigenvalues ascending = singular values reversed.
    auto Hd = ref::to_dense(H);
    std::vector<real_t<T>> w;
    ref::Dense<T> Vraw;
    ref::jacobi_eig(Hd, w, Vraw, {});

    // Reverse to descending sigma; clamp tiny negatives from rounding.
    out.sigma.resize(static_cast<size_t>(n));
    out.V = ref::Dense<T>(n, n);
    for (std::int64_t j = 0; j < n; ++j) {
        auto const src = n - 1 - j;
        out.sigma[static_cast<size_t>(j)] =
            std::max(w[static_cast<size_t>(src)], real_t<T>(0));
        for (std::int64_t i = 0; i < n; ++i)
            out.V(i, j) = Vraw(i, src);
    }

    // U = U_p V.
    auto Up = ref::to_dense(A);
    out.U = ref::Dense<T>(m, n);
    auto UV = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), Up, out.V);
    out.U = UV;
    return out;
}

template <typename T>
struct QdwhEigResult {
    std::vector<real_t<T>> lambda;  ///< ascending
    ref::Dense<T> V;                ///< unitary eigenvectors
    QdwhInfo polar_info;            ///< from the sign-function polar step
};

/// Hermitian eigendecomposition via one level of polar-based spectral
/// divide and conquer (Nakatsukasa & Higham; the paper's future-work
/// direction in Section 8):
///
///   1. shift s = trace(A)/n; QDWH gives U = sign(A - s I) since the polar
///      factor of a Hermitian matrix is its matrix sign function;
///   2. P = (U + I)/2 is the spectral projector onto eigenvalues > s; its
///      eigenvectors split C^n into the two invariant subspaces;
///   3. the two compressed blocks V_i^H A V_i are solved independently
///      (dense Jacobi here) and the eigensystem is assembled.
///
/// Falls back to the dense solver when the shift fails to split (all
/// eigenvalues on one side).
template <typename T>
QdwhEigResult<T> qdwh_eig(rt::Engine& eng, TiledMatrix<T> A) {
    using R = real_t<T>;
    if (A.empty() || A.m() != A.n())
        tbp_throw("qdwh_eig: require a non-empty square Hermitian matrix, got "
                  + std::to_string(A.empty() ? 0 : A.m()) + "-by-"
                  + std::to_string(A.empty() ? 0 : A.n()));
    std::int64_t const n = A.n();

    QdwhEigResult<T> out;
    auto Ad = ref::to_dense(A);

    // 1. Shifted polar step: U = sign(A - s I).
    R s_shift(0);
    for (std::int64_t i = 0; i < n; ++i)
        s_shift += real_part(Ad(i, i));
    s_shift /= static_cast<R>(n);

    TiledMatrix<T> Ashift = A.clone();
    for (std::int64_t i = 0; i < n; ++i)
        Ashift.at(i, i) -= from_real<T>(s_shift);
    TiledMatrix<T> H(A.col_tile_sizes(), A.col_tile_sizes(), A.grid());
    out.polar_info = qdwh(eng, Ashift, H);

    // 2. Spectral projector P = (U + I)/2 and its invariant subspaces.
    auto P = ref::to_dense(Ashift);
    for (std::int64_t j = 0; j < n; ++j) {
        for (std::int64_t i = 0; i < n; ++i)
            P(i, j) *= from_real<T>(R(0.5));
        P(j, j) += from_real<T>(R(0.5));
    }
    std::vector<R> pw;
    ref::Dense<T> Vp;
    ref::jacobi_eig(P, pw, Vp, {});  // eigenvalues ~0 then ~1, ascending

    std::int64_t n0 = 0;
    while (n0 < n && pw[static_cast<size_t>(n0)] < R(0.5))
        ++n0;
    std::int64_t const n1 = n - n0;

    if (n0 == 0 || n1 == 0) {
        // Degenerate split: solve directly.
        ref::jacobi_eig(Ad, out.lambda, out.V, {});
        return out;
    }

    // 3. Compress, solve the halves, assemble.
    auto solve_block = [&](std::int64_t c0, std::int64_t nc,
                           std::vector<R>& w, ref::Dense<T>& W) {
        ref::Dense<T> Vi(n, nc);
        for (std::int64_t j = 0; j < nc; ++j)
            for (std::int64_t i = 0; i < n; ++i)
                Vi(i, j) = Vp(i, c0 + j);
        auto AV = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), Ad, Vi);
        auto B = ref::gemm(Op::ConjTrans, Op::NoTrans, T(1), Vi, AV);
        // Enforce exact Hermitian symmetry before Jacobi.
        for (std::int64_t j = 0; j < nc; ++j)
            for (std::int64_t i = 0; i < nc; ++i)
                B(i, j) = (B(i, j) + conj_val(B(j, i))) * from_real<T>(R(0.5));
        ref::Dense<T> Wi;
        ref::jacobi_eig(B, w, Wi, {});
        W = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), Vi, Wi);
    };

    std::vector<R> w0, w1;
    ref::Dense<T> W0, W1;
    solve_block(0, n0, w0, W0);   // eigenvalues < s
    solve_block(n0, n1, w1, W1);  // eigenvalues > s

    out.lambda.resize(static_cast<size_t>(n));
    out.V = ref::Dense<T>(n, n);
    for (std::int64_t j = 0; j < n0; ++j) {
        out.lambda[static_cast<size_t>(j)] = w0[static_cast<size_t>(j)];
        for (std::int64_t i = 0; i < n; ++i)
            out.V(i, j) = W0(i, j);
    }
    for (std::int64_t j = 0; j < n1; ++j) {
        out.lambda[static_cast<size_t>(n0 + j)] = w1[static_cast<size_t>(j)];
        for (std::int64_t i = 0; i < n; ++i)
            out.V(i, n0 + j) = W1(i, j);
    }
    return out;
}

}  // namespace tbp
