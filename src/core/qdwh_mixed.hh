// Mixed-precision QDWH (paper Section 8, future work: "integrate
// mixed-precision techniques to further accelerate the polar decomposition").
//
// Strategy: run the full QDWH iteration in single precision (every flop of
// the expensive QR/Cholesky iterations at half the memory traffic and, on
// real accelerators, >= 2x the rate), then restore double-precision
// *orthogonality* with a few inverse-free Newton-Schulz refinement steps
//
//   U <- 3/2 U - 1/2 U (U^H U),
//
// which converge quadratically for sigma(U) in (0, sqrt(3)) — amply
// satisfied by a single-precision polar factor (||I - U^H U|| ~ 1e-6).
// Cost: the O(n^3) iterations in float + 2 gemm-bound cleanup steps in
// double, vs 6 full double iterations for plain QDWH.
//
// Accuracy contract (the standard mixed-precision polar trade): the float
// stage is backward stable *in float*, i.e. it computes the polar factor of
// A + dA with ||dA|| ~ eps32 ||A||. Refinement that never touches A again
// cannot undo that perturbation, so the result has
//   - orthogonality            ~ eps64          (restored by Newton-Schulz),
//   - backward error ||A-UH||  ~ eps32          (inherited from the float
//                                                 backward perturbation),
//   - forward error vs the double polar factor ~ eps32 * kappa(A)
//     (the polar factor's own conditioning).
// Use plain qdwh() when full double backward accuracy is required.

#pragma once

#include <cmath>
#include <limits>

#include "core/qdwh.hh"
#include "linalg/gemm.hh"
#include "linalg/util.hh"

namespace tbp {

struct QdwhMixedInfo {
    QdwhInfo low_precision;   ///< the float-precision QDWH run
    int refine_steps = 0;     ///< Newton-Schulz steps in double
    double orth_before = 0;   ///< ||I - U^H U||_F entering refinement
    double orth_after = 0;    ///< ... after refinement
};

namespace detail {

/// Element-wise precision conversion between conforming tiled matrices.
template <typename TS, typename TD>
void convert(rt::Engine& eng, TiledMatrix<TS> const& src, TiledMatrix<TD> dst) {
    tbp_require(src.mt() == dst.mt() && src.nt() == dst.nt());
    for (int j = 0; j < src.nt(); ++j) {
        for (int i = 0; i < src.mt(); ++i) {
            eng.submit("convert",
                       {rt::read(src.tile_key(i, j)), rt::write(dst.tile_key(i, j))},
                       [src, dst, i, j] {
                           auto s = src.tile(i, j);
                           auto d = dst.tile(i, j);
                           for (int c = 0; c < s.nb(); ++c)
                               for (int r = 0; r < s.mb(); ++r)
                                   d(r, c) = static_cast<TD>(s(r, c));
                       });
        }
    }
    eng.op_fence();
}

}  // namespace detail

/// Polar decomposition of a double-precision matrix with the iteration in
/// float: A (m x n, m >= n) is overwritten by U_p to double accuracy;
/// H (optional, n x n) as in qdwh().
inline QdwhMixedInfo qdwh_mixed(rt::Engine& eng, TiledMatrix<double> A,
                                TiledMatrix<double> H,
                                QdwhOptions const& opts = {}) {
    std::int64_t const n = A.n();
    auto const rows = A.row_tile_sizes();
    auto const cols = A.col_tile_sizes();

    QdwhMixedInfo info;
    TiledMatrix<double> Acpy = A.clone();

    // 1. Full QDWH in single precision. opts (including structured_qr,
    //    so the float stage shares the stacked-QR structure exploitation)
    //    passes through except for the H computation, done in double below.
    TiledMatrix<float> Af(rows, cols, A.grid());
    detail::convert(eng, A, Af);
    TiledMatrix<float> Hf;  // skipped
    QdwhOptions lo = opts;
    lo.compute_h = false;
    info.low_precision = qdwh(eng, Af, Hf, lo);
    detail::convert(eng, Af, A);  // A := float-accurate U_p

    // 2. Newton-Schulz refinement in double until machine-precision
    //    orthogonality (quadratic: ~2 steps from 1e-6).
    TiledMatrix<double> G(cols, cols, A.grid());
    TiledMatrix<double> UG(rows, cols, A.grid());
    double const eps = std::numeric_limits<double>::epsilon();
    for (int step = 0; step < 5; ++step) {
        // G := U^H U; orthogonality check on the fly.
        la::gemm(eng, Op::ConjTrans, Op::NoTrans, 1.0, A, A, 0.0, G);
        eng.wait();  // clone() reads tiles directly
        TiledMatrix<double> Gerr = G.clone();
        for (std::int64_t i = 0; i < n; ++i)
            Gerr.at(i, i) -= 1.0;
        double const orth = la::norm(eng, Norm::Fro, Gerr);
        if (step == 0)
            info.orth_before = orth;
        info.orth_after = orth;
        if (orth < 10 * eps * std::sqrt(static_cast<double>(n)))
            break;
        // U := 1.5 U - 0.5 U G.
        la::gemm(eng, Op::NoTrans, Op::NoTrans, -0.5, A, G, 0.0, UG);
        la::add(eng, 1.5, A, 1.0, UG);
        la::copy(eng, UG, A);
        ++info.refine_steps;
    }

    // 3. H = U^H A in double.
    if (opts.compute_h) {
        tbp_require(H.m() == n && H.n() == n);
        la::gemm(eng, Op::ConjTrans, Op::NoTrans, 1.0, A, Acpy, 0.0, H);
        if (opts.symmetrize_h) {
            TiledMatrix<double> Ht(cols, cols, A.grid());
            la::transpose_copy(eng, Op::ConjTrans, H, Ht);
            la::add(eng, 0.5, Ht, 0.5, H);
        }
    }
    eng.wait();
    return info;
}

}  // namespace tbp
