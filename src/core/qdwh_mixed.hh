// Mixed-precision QDWH (paper Section 8, future work: "integrate
// mixed-precision techniques to further accelerate the polar decomposition").
//
// Strategy: run the full QDWH iteration in single precision (every flop of
// the expensive QR/Cholesky iterations at half the memory traffic and, on
// real accelerators, >= 2x the rate), then restore double-precision
// *orthogonality* with a few inverse-free Newton-Schulz refinement steps
//
//   U <- 3/2 U - 1/2 U (U^H U),
//
// which converge quadratically for sigma(U) in (0, sqrt(3)) — amply
// satisfied by a single-precision polar factor (||I - U^H U|| ~ 1e-6).
// Cost: the O(n^3) iterations in float + 2 gemm-bound cleanup steps in
// double, vs 6 full double iterations for plain QDWH.
//
// Accuracy contract (the standard mixed-precision polar trade): the float
// stage is backward stable *in float*, i.e. it computes the polar factor of
// A + dA with ||dA|| ~ eps32 ||A||. Refinement that never touches A again
// cannot undo that perturbation, so the result has
//   - orthogonality            ~ eps64          (restored by Newton-Schulz),
//   - backward error ||A-UH||  ~ eps32          (inherited from the float
//                                                 backward perturbation),
//   - forward error vs the double polar factor ~ eps32 * kappa(A)
//     (the polar factor's own conditioning).
// Use plain qdwh() when full double backward accuracy is required.

#pragma once

#include <cmath>
#include <limits>

#include "core/qdwh.hh"
#include "core/refine.hh"
#include "linalg/gemm.hh"
#include "linalg/util.hh"

namespace tbp {

struct QdwhMixedInfo {
    QdwhInfo low_precision;   ///< the float-precision QDWH run
    int refine_steps = 0;     ///< Newton-Schulz steps in double
    double orth_before = 0;   ///< ||I - U^H U||_F entering refinement
    double orth_after = 0;    ///< ... after refinement
};

namespace detail {

/// Element-wise precision conversion between conforming tiled matrices.
/// Kept as a thin alias of la::convert_copy (the shared implementation the
/// precision ladder also uses).
template <typename TS, typename TD>
void convert(rt::Engine& eng, TiledMatrix<TS> const& src, TiledMatrix<TD> dst) {
    la::convert_copy(eng, src, dst);
}

}  // namespace detail

/// Polar decomposition of a double-precision matrix with the iteration in
/// float: A (m x n, m >= n) is overwritten by U_p to double accuracy;
/// H (optional, n x n) as in qdwh().
inline QdwhMixedInfo qdwh_mixed(rt::Engine& eng, TiledMatrix<double> A,
                                TiledMatrix<double> H,
                                QdwhOptions const& opts = {}) {
    std::int64_t const n = A.n();
    auto const rows = A.row_tile_sizes();
    auto const cols = A.col_tile_sizes();

    QdwhMixedInfo info;
    TiledMatrix<double> Acpy = A.clone();

    // 1. Full QDWH in single precision. opts (including structured_qr,
    //    so the float stage shares the stacked-QR structure exploitation)
    //    passes through except for the H computation, done in double below.
    TiledMatrix<float> Af(rows, cols, A.grid());
    detail::convert(eng, A, Af);
    TiledMatrix<float> Hf;  // skipped
    QdwhOptions lo = opts;
    lo.compute_h = false;
    // The float stage is already the low rung of this driver; never ladder
    // it a second time (a Bf16/Adaptive request belongs on qdwh() proper).
    lo.precision = prec::PrecisionPolicy{};
    info.low_precision = qdwh(eng, Af, Hf, lo);
    detail::convert(eng, Af, A);  // A := float-accurate U_p

    // 2. Newton-Schulz refinement in double until machine-precision
    //    orthogonality (quadratic: ~2 steps from 1e-6).
    RefineInfo const r = polar_refine_ns(eng, A, 5);
    info.refine_steps = r.steps;
    info.orth_before = r.orth_before;
    info.orth_after = r.orth_after;

    // 3. H = U^H A in double.
    if (opts.compute_h) {
        tbp_require(H.m() == n && H.n() == n);
        la::gemm(eng, Op::ConjTrans, Op::NoTrans, 1.0, A, Acpy, 0.0, H);
        if (opts.symmetrize_h) {
            TiledMatrix<double> Ht(cols, cols, A.grid());
            la::transpose_copy(eng, Op::ConjTrans, H, Ht);
            la::add(eng, 0.5, Ht, 0.5, H);
        }
    }
    eng.wait();
    return info;
}

}  // namespace tbp
