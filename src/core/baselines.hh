// Polar decomposition baselines from the paper's related work (Section 3).
//
//   newton_polar - Newton's iteration X <- (z X + (z X)^{-H}) / 2 with
//                  Higham's 1/inf-norm scaling. Needs an explicit inverse
//                  per step — exactly the numerical-stability weakness the
//                  paper cites as motivation for inverse-free QDWH.
//   svd_polar    - the classical SVD route: A = U Sigma V^H gives
//                  U_p = U V^H and H = V Sigma V^H. Accurate but built on a
//                  kernel (SVD) that resists communication-avoiding
//                  optimization (paper Sections 1, 4).
//
// Both operate on dense matrices via the reference substrate; they are
// correctness baselines and flop-model comparators, not performance
// contenders.

#pragma once

#include <cmath>
#include <limits>

#include "common/error.hh"
#include "common/types.hh"
#include "ref/dense.hh"
#include "ref/jacobi.hh"
#include "ref/lu.hh"

namespace tbp {

struct NewtonInfo {
    int iterations = 0;
    double conv = 0;
};

/// Polar decomposition of a nonsingular square A by scaled Newton iteration.
/// U overwrites nothing; returns U and H with A = U H.
template <typename T>
NewtonInfo newton_polar(ref::Dense<T> const& A, ref::Dense<T>& U,
                        ref::Dense<T>& H, int max_iter = 100) {
    using R = real_t<T>;
    std::int64_t const n = A.n();
    tbp_require(A.m() == n && n >= 1);

    R const eps = std::numeric_limits<R>::epsilon();
    R const tol = std::cbrt(R(5) * eps);

    NewtonInfo info;
    U = A;
    ref::Dense<T> Xprev(n, n);
    R conv = std::numeric_limits<R>::max();
    while (info.iterations < max_iter) {
        Xprev = U;
        auto Xinv = ref::inverse(U);
        // Y = X^{-H}
        ref::Dense<T> Y(n, n);
        for (std::int64_t j = 0; j < n; ++j)
            for (std::int64_t i = 0; i < n; ++i)
                Y(i, j) = conj_val(Xinv(j, i));
        // Higham scaling: zeta = ((||Y||_1 ||Y||_inf)/(||X||_1 ||X||_inf))^{1/4}
        auto inf_norm = [](ref::Dense<T> const& M) {
            R best(0);
            for (std::int64_t i = 0; i < M.m(); ++i) {
                R s(0);
                for (std::int64_t j = 0; j < M.n(); ++j)
                    s += std::abs(M(i, j));
                best = std::max(best, s);
            }
            return best;
        };
        R const zeta = std::pow((ref::norm_one(Y) * inf_norm(Y))
                                    / (ref::norm_one(U) * inf_norm(U)),
                                R(0.25));
        for (std::int64_t j = 0; j < n; ++j)
            for (std::int64_t i = 0; i < n; ++i)
                U(i, j) = (from_real<T>(zeta) * U(i, j)
                           + Y(i, j) / from_real<T>(zeta))
                          * from_real<T>(R(0.5));
        ++info.iterations;
        conv = ref::diff_fro(U, Xprev);
        if (conv < tol)
            break;
    }
    info.conv = static_cast<double>(conv);
    if (conv >= tol)
        tbp_throw("newton_polar: did not converge");

    // H = (U^H A + A^H U) / 2.
    auto G = ref::gemm(Op::ConjTrans, Op::NoTrans, T(1), U, A);
    H = ref::Dense<T>(n, n);
    for (std::int64_t j = 0; j < n; ++j)
        for (std::int64_t i = 0; i < n; ++i)
            H(i, j) = (G(i, j) + conj_val(G(j, i))) * from_real<T>(R(0.5));
    return info;
}

/// Polar decomposition via the SVD (m >= n): U_p = U V^H, H = V Sigma V^H.
template <typename T>
void svd_polar(ref::Dense<T> const& A, ref::Dense<T>& Up, ref::Dense<T>& H) {
    ref::Dense<T> U, V;
    std::vector<real_t<T>> s;
    ref::jacobi_svd(A, U, s, V);
    Up = ref::gemm(Op::NoTrans, Op::ConjTrans, T(1), U, V);
    // H = V diag(s) V^H.
    auto Vs = V;
    for (std::int64_t j = 0; j < V.n(); ++j)
        for (std::int64_t i = 0; i < V.m(); ++i)
            Vs(i, j) = V(i, j) * from_real<T>(s[static_cast<size_t>(j)]);
    H = ref::gemm(Op::NoTrans, Op::ConjTrans, T(1), Vs, V);
}

}  // namespace tbp
