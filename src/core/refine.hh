// Inverse-free Newton-Schulz orthogonality refinement, shared by the
// mixed-precision polar drivers (qdwh_mixed, the Zolo-PD precision ladder).
//
//   U <- 3/2 U - 1/2 U (U^H U)
//
// converges quadratically for sigma(U) in (0, sqrt(3)), so a handful of
// gemm-bound steps restore native-precision orthogonality to a polar factor
// computed in float (||I - U^H U|| ~ 1e-6 -> ~1e-12 -> eps64). The backward
// error of the low-precision stage is *not* repaired (see qdwh_mixed.hh for
// the accuracy contract).

#pragma once

#include <cmath>
#include <limits>

#include "linalg/gemm.hh"
#include "linalg/util.hh"
#include "matrix/tiled_matrix.hh"
#include "runtime/engine.hh"

namespace tbp {

struct RefineInfo {
    int steps = 0;           ///< Newton-Schulz steps taken
    double orth_before = 0;  ///< ||I - U^H U||_F entering refinement
    double orth_after = 0;   ///< ... at exit
};

/// Refine U (m x n, sigma(U) in (0, sqrt(3))) toward U^H U = I in U's own
/// precision. Stops when ||I - U^H U||_F < 10 eps sqrt(n) or after
/// max_steps. Synchronizes.
template <typename Ex, typename T>
RefineInfo polar_refine_ns(Ex& eng, TiledMatrix<T> U, int max_steps = 5) {
    using R = real_t<T>;
    std::int64_t const n = U.n();
    auto const rows = U.row_tile_sizes();
    auto const cols = U.col_tile_sizes();

    RefineInfo info;
    TiledMatrix<T> G(cols, cols, U.grid());
    TiledMatrix<T> UG(rows, cols, U.grid());
    R const eps = std::numeric_limits<R>::epsilon();
    for (int step = 0; step < max_steps; ++step) {
        // G := U^H U; orthogonality check on the fly.
        la::gemm(eng, Op::ConjTrans, Op::NoTrans, T(1), U, U, T(0), G);
        eng.wait();  // clone() reads tiles directly
        TiledMatrix<T> Gerr = G.clone();
        for (std::int64_t i = 0; i < n; ++i)
            Gerr.at(i, i) -= T(1);
        double const orth =
            static_cast<double>(la::norm(eng, Norm::Fro, Gerr));
        if (step == 0)
            info.orth_before = orth;
        info.orth_after = orth;
        if (orth < 10 * static_cast<double>(eps)
                       * std::sqrt(static_cast<double>(n)))
            break;
        // U := 1.5 U - 0.5 U G.
        la::gemm(eng, Op::NoTrans, Op::NoTrans, from_real<T>(R(-0.5)), U, G,
                 T(0), UG);
        la::add(eng, from_real<T>(R(1.5)), U, T(1), UG);
        la::copy(eng, UG, U);
        ++info.steps;
    }
    eng.wait();
    return info;
}

}  // namespace tbp
