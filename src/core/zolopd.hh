// Zolo-PD: polar decomposition via the Zolotarev rational approximation of
// the sign function (Nakatsukasa & Freund; the paper's Section 8 names this
// QDWH variant as future work and cites its implementation in [25]).
//
// Where QDWH applies the degree-(3,2) dynamically weighted Halley map per
// iteration, Zolo-PD applies a degree-(2r+1, 2r) Zolotarev-optimal rational
// function, evaluated through its partial-fraction expansion:
//
//   f(x) = x * prod_j (x^2 + c_{2j}) / (x^2 + c_{2j-1})
//        = x * (1 + sum_j a_j / (x^2 + c_{2j-1}))
//
// with c_i = l^2 sn^2(i K'/(2r+1); k') / cn^2(i K'/(2r+1); k'),
// k' = sqrt(1 - l^2), K' = K(k'). Each of the r partial-fraction terms
//
//   X (X^H X + c_{2j-1} I)^{-1}
//
// is computed independently — by the inverse-free QR trick on the stacked
// [X; sqrt(c) I] while ill-conditioned, by a Cholesky solve once c is small
// — which is exactly the extra concurrency (r independent factorizations
// per iteration) that makes Zolo-PD attractive in the strong-scaling
// regime, at ~r times the flops of one QDWH iteration. It converges in 2
// iterations for r = 8 even at kappa = 1e16.

#pragma once

#include <cmath>
#include <limits>
#include <vector>

#include "common/elliptic.hh"
#include "common/error.hh"
#include "common/precision.hh"
#include "common/types.hh"
#include "cond/condest.hh"
#include "cond/norm2est.hh"
#include "core/precision_policy.hh"
#include "core/refine.hh"
#include "device/executor.hh"
#include "linalg/gemm.hh"
#include "linalg/geqrf.hh"
#include "linalg/potrf.hh"
#include "linalg/trsm.hh"
#include "linalg/util.hh"
#include "matrix/tiled_matrix.hh"
#include "runtime/engine.hh"

namespace tbp {

struct ZoloOptions {
    /// Number of partial-fraction terms r (degree 2r+1 Zolotarev function).
    /// r = 8 converges in 2 iterations at kappa = 1e16 in double; smaller r
    /// trades concurrency for more iterations.
    int r = 8;
    double condest_override = 0;  ///< as in QdwhOptions
    int max_iter = 20;
    bool compute_h = true;
    bool symmetrize_h = true;
    /// Exploit the sqrt(c) I block of each stacked [X; sqrt(c) I] term via
    /// geqrf_stacked_tri / ungqr_stacked_tri (see QdwhOptions).
    bool structured_qr = true;
    /// Execution target (see QdwhOptions::target): per-tile tasks or the
    /// batched device executor.
    dev::Target target = dev::Target::Tasks;
    /// Panel lookahead depth of the QR/Cholesky solves (see QdwhOptions).
    int lookahead = 0;
    /// Largest coalesced batch under BatchedHost.
    int max_batch = 32;
    /// Precision ladder (core/precision_policy.hh). Zolo-PD's whole
    /// iteration converges in ~2 sweeps, so there is no per-iteration rung
    /// schedule to exploit: a low-precision request on a double-kind matrix
    /// runs the *entire* Zolotarev iteration in float (under simulated-bf16
    /// gemm mode for a Bf16 request) and restores double orthogonality with
    /// a Newton-Schulz polish, computing H natively. Ignored (native) for
    /// float-kind scalars.
    prec::PrecisionPolicy precision;
};

struct ZoloInfo {
    int iterations = 0;
    int terms = 0;           ///< r
    int qr_solves = 0;       ///< stacked-QR term evaluations
    int chol_solves = 0;     ///< Cholesky term evaluations
    bool converged = false;  ///< iteration met the tolerance
    double norm2_estimate = 0;
    double condest_l0 = 0;
    double conv = 0;
    double flops = 0;

    // Precision-ladder accounting (defaults describe a native run).
    bool low_precision = false;  ///< iteration ran on the float rung
    int refine_steps = 0;        ///< Newton-Schulz polish steps in native
    double orth_after = 0;       ///< ||I - U^H U||_F after the polish
};

namespace detail {

/// Zolotarev coefficients c_1..c_2r and partial-fraction residues a_1..a_r
/// for sign(x) on [l, 1].
struct ZoloCoeffs {
    std::vector<double> c;  // 2r values, c[i-1] = c_i
    std::vector<double> a;  // r residues for poles c_{2j-1}
    double f_max;           // max of f over [l, 1] (renormalization)
    double f_min;           // min of f over [l, 1] (next interval bound)
};

inline ZoloCoeffs zolo_coeffs(double l, int r) {
    tbp_require(0 < l && l < 1 && r >= 1);
    ZoloCoeffs z;
    // Modulus k' = sqrt(1 - l^2); for tiny l it rounds to 1.0 and the
    // elliptic functions degenerate to their hyperbolic forms, so K must be
    // computed from the complementary modulus l directly.
    double const kp = std::sqrt((1.0 - l) * (1.0 + l));
    double const K = ellip_K_from_complement(l);
    z.c.resize(static_cast<size_t>(2 * r));
    for (int i = 1; i <= 2 * r; ++i) {
        double const u = i * K / (2 * r + 1);
        double ci;
        if (l < 1e-6) {
            // Degenerate modulus: the Landen recurrence cannot deliver
            // cn(u, k') ~ sech(u) ~ l to relative accuracy (it cancels
            // O(1) quantities down to 1e-16). Use the exact k' -> 1 limit
            // sn -> tanh, cn -> sech: c_i = l^2 sinh^2(u_i) (error
            // O(l^2 e^{2u}) <= O(1e-2) at the top coefficient — a
            // negligible perturbation of the optimal rational function).
            double const sh = std::sinh(u);
            ci = (l * sh) * (l * sh);
        } else {
            auto const e = ellip_sncndn(u, kp);
            ci = l * l * (e.sn * e.sn) / (e.cn * e.cn);
        }
        z.c[static_cast<size_t>(i - 1)] = ci;
    }
    // Residues of f(x)/x at the poles -c_{2j-1}:
    //   a_j = -prod_{k=1}^{r} (c_{2j-1} - c_{2k})
    //        / prod_{k != j}   (c_{2j-1} - c_{2k-1}).
    z.a.resize(static_cast<size_t>(r));
    for (int j = 1; j <= r; ++j) {
        double num = 1, den = 1;
        double const p = z.c[static_cast<size_t>(2 * j - 2)];
        for (int k = 1; k <= r; ++k) {
            num *= p - z.c[static_cast<size_t>(2 * k - 1)];
            if (k != j)
                den *= p - z.c[static_cast<size_t>(2 * k - 2)];
        }
        z.a[static_cast<size_t>(j - 1)] = -num / den;
    }
    // Evaluate f in product form — the partial-fraction form cancels
    // catastrophically for scalar arguments when the poles span many orders
    // of magnitude (the matrix iteration is immune: each term is an
    // orthogonal-QR solve, cf. Nakatsukasa-Freund's stability analysis).
    auto f = [&](double x) {
        double v = x;
        for (int j = 1; j <= r; ++j)
            v *= (x * x + z.c[static_cast<size_t>(2 * j - 1)])
                 / (x * x + z.c[static_cast<size_t>(2 * j - 2)]);
        return v;
    };
    // The Zolotarev function equioscillates on [l, 1]; sample the image
    // interval numerically (log spacing resolves the decades near l, linear
    // spacing the oscillations near 1).
    z.f_max = 0;
    z.f_min = std::numeric_limits<double>::max();
    auto probe = [&](double x) {
        double const v = f(x);
        z.f_max = std::max(z.f_max, v);
        z.f_min = std::min(z.f_min, v);
    };
    int const grid = 2000;
    double const log_l = std::log(l);
    for (int i = 0; i <= grid; ++i) {
        double const t = static_cast<double>(i) / grid;
        probe(std::exp(log_l * (1.0 - t)));  // log-spaced l..1
        probe(l + (1.0 - l) * t);            // linear-spaced l..1
    }
    return z;
}

template <typename Ex, typename T>
Status zolo_impl(Ex& eng, TiledMatrix<T> A, TiledMatrix<T> H, ZoloInfo& info,
                 ZoloOptions const& opts);

template <typename T>
Status zolo_ladder_impl(rt::Engine& eng, TiledMatrix<T> A, TiledMatrix<T> H,
                        ZoloInfo& info, ZoloOptions const& opts);

}  // namespace detail

/// Status-returning Zolo-PD (same failure contract as qdwh_status):
/// validates up front, reports ZeroMatrix / NotConverged / NumericalError
/// instead of throwing. The batched service entry point.
template <typename T>
Status zolo_pd_status(rt::Engine& eng, TiledMatrix<T> A, TiledMatrix<T> H,
                      ZoloInfo& info, ZoloOptions const& opts = {}) {
    info = ZoloInfo{};
    if (A.empty() || A.m() < A.n())
        return Status::InvalidArgument;
    std::int64_t const n = A.n();
    if (opts.compute_h && (H.empty() || H.m() != n || H.n() != n))
        return Status::InvalidArgument;
    if (opts.r < 1 || opts.max_iter < 1)
        return Status::InvalidArgument;

    if constexpr (std::is_same_v<T, double>
                  || std::is_same_v<T, std::complex<double>>) {
        if (prec::ladder_engaged(opts.precision.request,
                                 prec::native_prec<T>())) {
            try {
                return detail::zolo_ladder_impl(eng, A, H, info, opts);
            } catch (Error const&) {
                try {
                    eng.wait();
                } catch (...) {
                }
                return Status::NumericalError;
            }
        }
    }

    try {
        if (opts.target == dev::Target::BatchedHost) {
            dev::ExecOptions eo;
            eo.target = dev::Target::BatchedHost;
            eo.max_batch = opts.max_batch;
            eo.tile_bytes = static_cast<std::size_t>(A.tile_mb(0))
                            * static_cast<std::size_t>(A.tile_nb(0))
                            * sizeof(T);
            dev::Executor ex(eng, eo);
            return detail::zolo_impl(ex, A, H, info, opts);
        }
        return detail::zolo_impl(eng, A, H, info, opts);
    } catch (Error const&) {
        try {
            eng.wait();
        } catch (...) {
        }
        return Status::NumericalError;
    }
}

namespace detail {

/// Body of zolo_pd_status after validation; may throw tbp::Error from task
/// synchronization points (caught and mapped by zolo_pd_status).
template <typename Ex, typename T>
Status zolo_impl(Ex& eng, TiledMatrix<T> A, TiledMatrix<T> H, ZoloInfo& info,
                 ZoloOptions const& opts) {
    using R = real_t<T>;
    std::int64_t const n = A.n();
    info.terms = opts.r;
    double const flops0 = eng.flops_executed();

    R const eps = std::numeric_limits<R>::epsilon();
    R const tol1 = R(10) * eps;
    R const tol3 = std::cbrt(R(5) * eps);

    int const mt = A.mt();
    int const nt = A.nt();
    auto const row_sizes = A.row_tile_sizes();
    auto const col_sizes = A.col_tile_sizes();

    eng.wait();  // quiesce pending caller tasks: clone() reads tiles directly
    TiledMatrix<T> Acpy = A.clone();
    TiledMatrix<T> Aprev(row_sizes, col_sizes, A.grid());
    TiledMatrix<T> Acc(row_sizes, col_sizes, A.grid());
    TiledMatrix<T> Term(row_sizes, col_sizes, A.grid());
    std::vector<int> w_rows = row_sizes;
    w_rows.insert(w_rows.end(), col_sizes.begin(), col_sizes.end());
    TiledMatrix<T> W(w_rows, col_sizes, A.grid());
    TiledMatrix<T> Q(w_rows, col_sizes, A.grid());
    TiledMatrix<T> Tw = la::alloc_qr_t(W);
    TiledMatrix<T> Z(col_sizes, col_sizes, A.grid());

    // Scale and estimate sigma_min as in QDWH.
    R const alpha = cond::norm2est(eng, A);
    if (alpha == R(0)) {
        info.flops = eng.flops_executed() - flops0;
        return Status::ZeroMatrix;
    }
    info.norm2_estimate = static_cast<double>(alpha);
    la::scale(eng, from_real<T>(R(1) / alpha), A);

    TiledMatrix<T> W1 = W.sub(0, 0, mt, nt);
    TiledMatrix<T> W2 = W.sub(mt, 0, nt, nt);
    TiledMatrix<T> Q1 = Q.sub(0, 0, mt, nt);
    TiledMatrix<T> Q2 = Q.sub(mt, 0, nt, nt);

    // Condition estimate reusing the W1/Tw iteration workspaces (the first
    // term evaluation reinitializes them), as in qdwh().
    R li;
    if (opts.condest_override > 0) {
        li = static_cast<R>(opts.condest_override);
    } else {
        R const anorm = la::norm(eng, Norm::One, A);
        la::copy(eng, A, W1);
        la::geqrf(eng, W1, Tw.sub(0, 0, mt, nt), opts.lookahead);
        eng.wait();
        R const rcond = cond::trcondest(eng, W1);
        li = anorm * rcond / std::sqrt(static_cast<R>(n));
    }
    // Floor below double's kappa = 1e16 regime: the Zolotarev interval
    // must contain sigma_min(A0) or the bottom of the spectrum is
    // under-lifted and extra sweeps are needed.
    li = std::min(std::max(li, R(1e-17)), R(0.999));
    info.condest_l0 = static_cast<double>(li);

    R conv = R(100);
    while ((conv >= tol3 || std::abs(li - R(1)) >= tol1)
           && info.iterations < opts.max_iter) {
        // Clamp the coefficient argument: in low precision li can round to
        // exactly 1 while the iterate still needs a final polishing sweep.
        double const l_arg = std::min(
            std::max(static_cast<double>(li), 1e-17), 1.0 - 1e-12);
        auto const zc = detail::zolo_coeffs(l_arg, opts.r);

        // The Cholesky operand c I + X^H X has condition <= (c + 1)/(c +
        // l^2); safe only once the iterate is well-conditioned. Mirrors
        // QDWH's QR -> Cholesky switch (and Zolo-PD's iteration-1-QR /
        // iteration-2-Cholesky schedule).
        bool const use_qr = li < R(0.3);

        la::copy(eng, A, Aprev);
        la::copy(eng, A, Acc);  // the leading "x * 1" term

        for (int j = 1; j <= opts.r; ++j) {
            double const c = zc.c[static_cast<size_t>(2 * j - 2)];
            double const aj = zc.a[static_cast<size_t>(j - 1)];
            if (use_qr) {
                // QR evaluation on the stacked [X; sqrt(c) I]; exact even
                // for ill-conditioned X.
                la::copy(eng, Aprev, W1);
                if (opts.structured_qr) {
                    la::geqrf_stacked_tri(
                        eng, W, mt, from_real<T>(static_cast<R>(std::sqrt(c))),
                        Tw, opts.lookahead);
                    la::ungqr_stacked_tri(eng, W, mt, Tw, Q);
                    // X (X^H X + c I)^{-1} = Q1 Q2^H / sqrt(c); Q2 =
                    // sqrt(c) R^{-1} is block upper triangular.
                    la::gemm_rt_upper(
                        eng, from_real<T>(static_cast<R>(aj / std::sqrt(c))),
                        Q1, Q2, T(1), Acc);
                } else {
                    la::set_identity(eng, W2);
                    la::scale(eng, from_real<T>(static_cast<R>(std::sqrt(c))),
                              W2);
                    la::geqrf(eng, W, Tw, opts.lookahead);
                    la::ungqr(eng, W, Tw, Q);
                    la::gemm(eng, Op::NoTrans, Op::ConjTrans,
                             from_real<T>(static_cast<R>(aj / std::sqrt(c))),
                             Q1, Q2, T(1), Acc);
                }
                ++info.qr_solves;
            } else {
                // Cholesky evaluation: Z = c I + X^H X.
                la::set(eng, T(0), from_real<T>(static_cast<R>(c)), Z);
                la::herk(eng, Uplo::Lower, Op::ConjTrans, R(1), Aprev, R(1), Z);
                la::potrf(eng, Uplo::Lower, Z, opts.lookahead);
                la::copy(eng, Aprev, Term);
                la::trsm(eng, Side::Right, Uplo::Lower, Op::ConjTrans,
                         Diag::NonUnit, T(1), Z, Term);
                la::trsm(eng, Side::Right, Uplo::Lower, Op::NoTrans,
                         Diag::NonUnit, T(1), Z, Term);
                la::add(eng, from_real<T>(static_cast<R>(aj)), Term, T(1), Acc);
                ++info.chol_solves;
            }
        }

        // Renormalize the image interval [f_min, f_max] back into (0, 1].
        la::copy(eng, Acc, A);
        la::scale(eng, from_real<T>(static_cast<R>(1.0 / zc.f_max)), A);
        li = static_cast<R>(zc.f_min / zc.f_max);

        // Fused non-destructive convergence check (one read-only sweep).
        conv = la::diff_norm_fro(eng, A, Aprev);
        ++info.iterations;
    }
    info.conv = static_cast<double>(conv);
    if (info.iterations >= opts.max_iter
        && (conv >= tol3 || std::abs(li - R(1)) >= tol1)) {
        eng.wait();
        info.flops = eng.flops_executed() - flops0;
        return Status::NotConverged;
    }
    info.converged = true;

    if (opts.compute_h) {
        la::gemm(eng, Op::ConjTrans, Op::NoTrans, T(1), A, Acpy, T(0), H);
        if (opts.symmetrize_h) {
            TiledMatrix<T> Ht(col_sizes, col_sizes, A.grid());
            la::transpose_copy(eng, Op::ConjTrans, H, Ht);
            la::add(eng, T(0.5), Ht, T(0.5), H);
        }
    }
    eng.wait();
    info.flops = eng.flops_executed() - flops0;
    return Status::Ok;
}

/// Low-precision Zolo-PD for double-kind scalars: the whole Zolotarev
/// iteration runs on the float shadow type (under simulated-bf16 gemm mode
/// when requested), followed by a native Newton-Schulz orthogonality polish
/// and a native H = U^H A. See ZoloOptions::precision for the rationale —
/// Zolo-PD has no per-iteration schedule worth laddering.
template <typename T>
Status zolo_ladder_impl(rt::Engine& eng, TiledMatrix<T> A, TiledMatrix<T> H,
                        ZoloInfo& info, ZoloOptions const& opts) {
    using S = prec::shadow_t<T>;

    eng.wait();  // clone() reads tiles directly
    TiledMatrix<T> Acpy = A.clone();
    TiledMatrix<S> As(A.row_tile_sizes(), A.col_tile_sizes(), A.grid());
    la::convert_copy(eng, A, As);

    TiledMatrix<S> Hs;  // skipped in the low stage
    ZoloOptions lo = opts;
    lo.compute_h = false;
    lo.precision = prec::PrecisionPolicy{};  // the shadow run is the rung
    Status s;
    {
        prec::ScopedGemmMode mode_scope(
            opts.precision.request == prec::Precision::Bf16
                ? (opts.precision.compensated ? prec::GemmMode::Bf16Comp
                                              : prec::GemmMode::Bf16)
                : prec::GemmMode::Native);
        s = zolo_pd_status(eng, As, Hs, info, lo);
    }
    if (s != Status::Ok)
        return s;
    info.low_precision = true;
    la::convert_copy(eng, As, A);

    RefineInfo const r = polar_refine_ns(eng, A, 5);
    info.refine_steps = r.steps;
    info.orth_after = r.orth_after;

    if (opts.compute_h) {
        la::gemm(eng, Op::ConjTrans, Op::NoTrans, T(1), A, Acpy, T(0), H);
        if (opts.symmetrize_h) {
            TiledMatrix<T> Ht(H.row_tile_sizes(), H.col_tile_sizes(),
                              A.grid());
            la::transpose_copy(eng, Op::ConjTrans, H, Ht);
            la::add(eng, T(0.5), Ht, T(0.5), H);
        }
    }
    eng.wait();
    return Status::Ok;
}

}  // namespace detail

/// Polar decomposition A = U_p H by Zolo-PD. Same contract as qdwh():
/// A (m x n, m >= n) is overwritten by U_p; H optional n x n. Throws
/// tbp::Error on invalid input, a zero matrix, or non-convergence.
template <typename T>
ZoloInfo zolo_pd(rt::Engine& eng, TiledMatrix<T> A, TiledMatrix<T> H,
                 ZoloOptions const& opts = {}) {
    ZoloInfo info;
    Status const s = zolo_pd_status(eng, A, H, info, opts);
    if (s != Status::Ok)
        detail::throw_status("zolo_pd", s,
                             A.empty() ? 0 : static_cast<long long>(A.m()),
                             A.empty() ? 0 : static_cast<long long>(A.n()),
                             opts.max_iter);
    return info;
}

}  // namespace tbp
