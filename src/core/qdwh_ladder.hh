// Adaptive precision-ladder QDWH driver (internal continuation of
// core/qdwh.hh — include that header, not this one).
//
// The loop structure mirrors detail::qdwh_impl exactly; what changes is
// *where* each iteration's flops run. A pre-computed rung plan
// (prec::plan_rungs, a pure function of the condition estimate l0) assigns
// every iteration to simulated-bf16, float, or the native type:
//
//   native rung — the iteration body runs on the native buffers, exactly
//                 as in qdwh_impl.
//   float rung  — the entering iterate converts into a float shadow
//                 workspace, the body runs there (every QR/Cholesky flop in
//                 float, half the memory traffic), and the result converts
//                 back. The two O(n^2) conversion sweeps are the price for
//                 O(n^3) iteration flops at the float rate.
//   bf16 rung   — the float-rung body under an active bf16 gemm mode:
//                 pack-time truncation of every gemm operand to bf16 with
//                 fp32 accumulation (see blas/kernel/gemm.hh), optionally
//                 compensated.
//
// The l recurrence itself runs in double (prec::qdwh_weights — the same
// pure function the plan and the cost model use), so the executed schedule
// is deterministic at fixed inputs and identical across execution targets
// and process grids.
//
// Fallback: a low-precision Cholesky iteration whose operand loses
// numerical positive definiteness throws from potrf; the error surfaces at
// the convergence-norm sync, the engine quiesces, and the iteration re-runs
// one rung up from the *intact* native iterate (bodies only write the
// shadow and `oth` buffers). A native-rung failure is terminal, exactly as
// in qdwh_impl. Promotions are recorded in info.fallbacks, and a fallback
// that discarded partially executed work clears info.kernel_flops_exact
// (the cost model cannot replay a poisoned half-iteration's charges).
//
// Accuracy: the final planned iterations and every conv-driven straggler
// run native (policy tail_native >= 1 by default), and one native Halley
// step cubes the float-level error (1e-7^3 << eps64), so the loop exits at
// native orthogonality; H = U^H A is computed natively from the original A.

#pragma once

#include <array>
#include <cmath>
#include <limits>
#include <vector>

// Opened relative on purpose: this header is textually included from inside
// namespace tbp (core/qdwh.hh), so `detail` resolves to tbp::detail.
namespace detail {

template <typename T>
using qdwh_shadow_t = prec::shadow_t<T>;

template <typename Ex, typename T>
Status qdwh_ladder_impl(Ex& eng, TiledMatrix<T> A, TiledMatrix<T> H,
                        QdwhInfo& info, QdwhOptions const& opts) {
    using R = real_t<T>;
    using S = qdwh_shadow_t<T>;
    prec::Prec const native = prec::native_prec<T>();
    prec::PrecisionPolicy const& pol = opts.precision;

    std::int64_t const n = A.n();
    double const flops0 = eng.flops_executed();

    R const eps = std::numeric_limits<R>::epsilon();
    R const tol1 = R(5) * eps;
    R const tol3 = std::cbrt(tol1);

    int const mt = A.mt();
    int const nt = A.nt();
    auto const row_sizes = A.row_tile_sizes();
    auto const col_sizes = A.col_tile_sizes();

    eng.wait();  // quiesce pending caller tasks: clone() reads tiles directly
    TiledMatrix<T> Acpy = A.clone();  // backup of the *unscaled* A, for H
    TiledMatrix<T> Aalt(row_sizes, col_sizes, A.grid());
    QdwhWorkspace<T> ws(row_sizes, col_sizes, A.grid());
    TiledMatrix<T> W1 = ws.W.sub(0, 0, mt, nt);

    // --- Stage 1: two-norm estimate and scaling (native) ------------------
    R const alpha = cond::norm2est(eng, A);
    if (alpha == R(0)) {
        info.flops = eng.flops_executed() - flops0;
        return Status::ZeroMatrix;
    }
    info.norm2_estimate = static_cast<double>(alpha);
    la::scale(eng, from_real<T>(R(1) / alpha), A);

    // --- Stage 2: condition estimate (native) -----------------------------
    R li_est;
    if (opts.condest_override > 0) {
        li_est = static_cast<R>(opts.condest_override);
    } else {
        R const anorm = la::norm(eng, Norm::One, A);
        la::copy(eng, A, W1);
        la::geqrf(eng, W1, ws.Tw.sub(0, 0, mt, nt), opts.lookahead);
        eng.wait();
        R const rcond = cond::trcondest(eng, W1);
        li_est = anorm * rcond / std::sqrt(static_cast<R>(n));
    }
    R const li_floor = std::numeric_limits<R>::min() * R(100);
    li_est = std::min(std::max(li_est, li_floor), R(1));
    info.condest_l0 = static_cast<double>(li_est);

    // The l recurrence runs in double from here on — the single source of
    // the deterministic rung schedule (shared with plan_rungs and the
    // precision cost model).
    double li = static_cast<double>(li_est);
    auto const plan = prec::plan_rungs(li, static_cast<double>(tol1),
                                       opts.max_iter, pol, native);

    // Shadow workspaces, allocated on first low-rung use (a well-conditioned
    // run whose plan is empty never pays for them).
    TiledMatrix<S> Scur, Soth;
    QdwhWorkspace<S> sws;
    auto ensure_shadow = [&] {
        if (!Scur.empty())
            return;
        Scur = TiledMatrix<S>(row_sizes, col_sizes, A.grid());
        Soth = TiledMatrix<S>(row_sizes, col_sizes, A.grid());
        sws = QdwhWorkspace<S>(row_sizes, col_sizes, A.grid());
    };

    // --- Stage 3: main iteration ------------------------------------------
    // Measured-counter snapshot; see qdwh_impl for the region contract.
    std::array<double, prec::kNumPrec> kf0{};
    for (int p = 0; p < prec::kNumPrec; ++p)
        kf0[static_cast<std::size_t>(p)] =
            blas::kernel::flops_performed(static_cast<prec::Prec>(p));

    R conv = R(100);
    TiledMatrix<T>* cur = &A;
    TiledMatrix<T>* oth = &Aalt;
    bool forced_fallback_done = false;

    while ((conv >= tol3 || std::abs(li - 1.0) >= static_cast<double>(tol1))
           && info.iterations < opts.max_iter) {
        std::size_t const k = static_cast<std::size_t>(info.iterations);
        prec::QdwhWeights const w = prec::qdwh_weights(li);
        li = w.li_next;
        info.li_history.push_back(li);
        prec::Prec rung = k < plan.size() ? plan[k].rung : native;

        for (;;) {  // fallback: retry one rung up until native
            bool failed = false;
            if (pol.force_fallback_iter == info.iterations && rung != native
                && !forced_fallback_done) {
                // Test hook: fail *before* submission, so no partial
                // charges are discarded and accounting stays exact.
                forced_fallback_done = true;
                failed = true;
            } else {
                try {
                    if (rung == native) {
                        if (w.qr)
                            qdwh_qr_iter(eng, w.a, w.b, w.c, *cur, *oth, ws,
                                         mt, nt, opts.structured_qr,
                                         opts.lookahead);
                        else
                            qdwh_chol_iter(eng, w.a, w.b, w.c, *cur, *oth,
                                           ws, opts.lookahead);
                    } else {
                        ensure_shadow();
                        la::convert_copy(eng, *cur, Scur);
                        {
                            // Submission-side mode: captured into every
                            // task (and batch-group key) this scope emits.
                            prec::GemmMode const gm =
                                rung == prec::Prec::Bf16
                                    ? (pol.compensated
                                           ? prec::GemmMode::Bf16Comp
                                           : prec::GemmMode::Bf16)
                                    : prec::GemmMode::Native;
                            prec::ScopedGemmMode mode_scope(gm);
                            if (w.qr)
                                qdwh_qr_iter(eng, w.a, w.b, w.c, Scur, Soth,
                                             sws, mt, nt, opts.structured_qr,
                                             opts.lookahead);
                            else
                                qdwh_chol_iter(eng, w.a, w.b, w.c, Scur,
                                               Soth, sws, opts.lookahead);
                        }
                        la::convert_copy(eng, Soth, *oth);
                    }
                    conv = la::diff_norm_fro(eng, *oth, *cur);  // syncs
                    if (!std::isfinite(static_cast<double>(conv))) {
                        failed = true;
                        info.kernel_flops_exact = false;
                    }
                } catch (Error const&) {
                    if (rung == native)
                        throw;  // terminal, mapped by qdwh_status
                    try {
                        eng.wait();  // quiesce the poisoned DAG
                    } catch (...) {
                    }
                    failed = true;
                    info.kernel_flops_exact = false;
                }
            }
            if (!failed)
                break;
            if (rung == native)
                tbp_throw("qdwh: non-finite iterate at native precision");
            rung = prec::promote(rung, native);
            ++info.fallbacks;
        }

        info.rungs.push_back(rung);
        if (w.qr)
            ++info.it_qr;
        else
            ++info.it_chol;
        std::swap(cur, oth);
        ++info.iterations;
    }
    if (cur != &A)
        la::copy(eng, *cur, A);
    info.conv = static_cast<double>(conv);
    if (info.iterations >= opts.max_iter
        && (conv >= tol3 || std::abs(li - 1.0) >= static_cast<double>(tol1))) {
        eng.wait();
        info.flops = eng.flops_executed() - flops0;
        return Status::NotConverged;
    }
    info.converged = true;

    // --- Stage 4: H = U_p^H A, always native ------------------------------
    if (opts.compute_h)
        qdwh_h_stage(eng, A, Acpy, H, opts.symmetrize_h);
    eng.wait();

    for (int p = 0; p < prec::kNumPrec; ++p)
        info.kernel_flops_by_prec[static_cast<std::size_t>(p)] =
            blas::kernel::flops_performed(static_cast<prec::Prec>(p))
            - kf0[static_cast<std::size_t>(p)];
    info.flops = eng.flops_executed() - flops0;
    return Status::Ok;
}

}  // namespace detail
