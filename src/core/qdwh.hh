// QDWH-based polar decomposition — the paper's Algorithm 1.
//
// Computes A = U_p H for A in C^{m x n} (m >= n): U_p with orthonormal
// columns overwrites A, and H (n x n, Hermitian positive semidefinite) is
// returned in H. The iteration is the inverse-free QR-based dynamically
// weighted Halley method of Nakatsukasa et al., switching to the cheaper
// Cholesky-based variant once the iterate is well-conditioned (c <= 100),
// exactly as in the paper.
//
// Stage map (Algorithm 1 line numbers in brackets):
//   1. two-norm estimate and scaling           [11-13]  cond::norm2est
//   2. condition estimate via QR + trcondest   [15-19]  la::geqrf, cond::trcondest
//   3. QR-based iterations                     [30-36]  la::geqrf/ungqr/gemm
//      Cholesky-based iterations               [38-44]  la::herk/potrf/trsm/add
//   4. H = U_p^H A                             [52]     la::gemm (+ symmetrization)
//
// Note on Algorithm 1 line 40: the paper prints `herk(-c, A, one, W2)` with
// the comment W2 = I - c A^T A, but Eq. (2) (and positive definiteness of
// the Cholesky operand, given c >= 3) require Z = I + c A^H A; we follow
// Eq. (2). This implementation also realizes the paper's posv(W2, A^T) step
// as two right-side triangular solves with the Cholesky factor,
// A := A L^{-H} L^{-1} = A Z^{-1}, avoiding the explicit transposes.
//
// All four scalar types are supported; execution is task-dataflow or
// fork-join depending on the engine's mode (paper's SLATE vs ScaLAPACK).

#pragma once

#include <array>
#include <cmath>
#include <limits>
#include <vector>

#include "blas/kernel/stats.hh"
#include "comm/grid3d.hh"
#include "common/error.hh"
#include "common/precision.hh"
#include "common/types.hh"
#include "cond/condest.hh"
#include "cond/norm2est.hh"
#include "core/precision_policy.hh"
#include "device/executor.hh"
#include "linalg/gemm.hh"
#include "linalg/geqrf.hh"
#include "linalg/potrf.hh"
#include "linalg/trsm.hh"
#include "linalg/util.hh"
#include "matrix/tiled_matrix.hh"
#include "runtime/engine.hh"

namespace tbp {

struct QdwhOptions {
    /// Override the estimated lower bound l0 on sigma_min(A0); <= 0 means
    /// estimate it via QR + trcondest (the paper's path).
    double condest_override = 0;
    /// Safety cap on iterations (theory guarantees <= 6 in double).
    int max_iter = 50;
    /// Compute H = U_p^H A after convergence (Algorithm 1 line 52).
    bool compute_h = true;
    /// Enforce exact Hermitian symmetry of H: H := (H + H^H)/2.
    bool symmetrize_h = true;
    /// Exploit the identity block of W = [sqrt(c) A; I] in the QR-based
    /// iterations (geqrf_stacked_tri / ungqr_stacked_tri / triangular Q2
    /// gemm, ~35% fewer QR-iteration flops at m = n). Off selects the dense
    /// oracle path, which factors W with no structural assumptions.
    bool structured_qr = true;
    /// Execution target: per-tile engine tasks (the oracle) or the batched
    /// device executor, which coalesces same-shape tile ops into batched
    /// engine tasks (SLATE's Target::Devices analogue; bitwise-identical
    /// results, 5-30x fewer scheduler tasks).
    dev::Target target = dev::Target::Tasks;
    /// Panel lookahead depth of the QR/Cholesky iterates (geqrf/potrf):
    /// updates into the next `lookahead` panel columns ride the priority
    /// lane so those panels unblock early. 0 = plain dataflow schedule.
    int lookahead = 0;
    /// Largest batch the executor may coalesce (BatchedHost only).
    int max_batch = 32;
    /// Distributed-run communication plan for the SUMMA-shaped gemms (the
    /// dqdwh trailing update): Auto lets perf::choose_summa_plan cost 2D vs
    /// replicated-layer 2.5D with the max_rank_bytes bottleneck metric at
    /// dispatch time; Grid2d / Grid25d force a variant. Ignored by the
    /// shared-memory paths.
    comm::CommPlan comm_plan = comm::CommPlan::Auto;
    /// Explicit 2.5D replication depth c (> 1 forces that many layers);
    /// 0 = derive from comm_plan.
    int repl = 0;
    /// Precision-ladder policy (core/precision_policy.hh). Native keeps the
    /// pre-ladder single-precision-type loop; Float/Bf16/Adaptive run
    /// admissible iterations on lower rungs with a native tail and native H
    /// polish, promoting a failed low-precision Cholesky iterate one rung
    /// up instead of aborting.
    prec::PrecisionPolicy precision;
    /// Model device staging streams in the batched executor (BatchedHost
    /// only). The service layer turns this off: its jobs run on private
    /// sequential engines where stream modeling is pure bookkeeping
    /// overhead on small matrices.
    bool model_streams = true;
};

struct QdwhInfo {
    int iterations = 0;  ///< total iterations
    int it_qr = 0;       ///< QR-based iterations (Eq. 1)
    int it_chol = 0;     ///< Cholesky-based iterations (Eq. 2)
    bool converged = false;     ///< iteration met the tolerance
    double norm2_estimate = 0;  ///< estimated ||A||_2 used for scaling
    double condest_l0 = 0;      ///< lower bound on sigma_min(A0)
    double conv = 0;            ///< final ||A_k - A_{k-1}||_F
    double flops = 0;           ///< flops executed by this call (measured)
    std::vector<double> li_history;  ///< L_k after each parameter update

    // Batched-executor accounting (meaningful when opts.target ==
    // dev::Target::BatchedHost; defaults describe the per-tile path).
    std::uint64_t tile_ops = 0;      ///< tile ops routed via the executor
    std::uint64_t engine_tasks = 0;  ///< engine tasks they coalesced into
    double coalescing = 1.0;         ///< tile_ops / engine_tasks
    double stream_h2d_bytes = 0;     ///< modeled device staging volume
    double stream_overlap = 1.0;     ///< modeled copy/compute overlap

    // Precision-ladder accounting. The plain (native) path reports every
    // iteration at the native rung.
    std::vector<prec::Prec> rungs;  ///< executed rung per iteration
    int fallbacks = 0;  ///< low-rung attempts re-run one rung up
    /// Measured kernel-counter deltas (blas::kernel::flops_performed per
    /// bucket) over the iteration loop + H stage — the quantity the
    /// precision-aware cost model reproduces exactly. Valid only when no
    /// concurrent kernel activity shares the process-global counters.
    std::array<double, prec::kNumPrec> kernel_flops_by_prec{};
    /// False when a mid-flight fallback discarded a partially executed
    /// iteration's charges (the model cannot replay partial poisoned DAGs).
    bool kernel_flops_exact = true;
};

namespace detail {
template <typename Ex, typename T>
Status qdwh_impl(Ex& eng, TiledMatrix<T> A, TiledMatrix<T> H, QdwhInfo& info,
                 QdwhOptions const& opts);
template <typename Ex, typename T>
Status qdwh_ladder_impl(Ex& eng, TiledMatrix<T> A, TiledMatrix<T> H,
                        QdwhInfo& info, QdwhOptions const& opts);
}  // namespace detail

/// Status-returning polar decomposition A = U_p H by QDWH (the batched
/// service entry point: a failing job must report, not unwind through the
/// shared engine). A (m x n, m >= n) is overwritten by U_p; if
/// opts.compute_h, H must be n-by-n with A's column tile sizes. Validates
/// inputs up front (InvalidArgument) instead of failing downstream in
/// geqrf; returns ZeroMatrix / NotConverged / NumericalError in place of
/// the throwing wrapper's tbp::Error. `info` is always filled with
/// whatever progress was made.
template <typename T>
Status qdwh_status(rt::Engine& eng, TiledMatrix<T> A, TiledMatrix<T> H,
                   QdwhInfo& info, QdwhOptions const& opts = {}) {
    info = QdwhInfo{};
    if (A.empty() || A.m() < A.n())
        return Status::InvalidArgument;
    std::int64_t const n = A.n();
    if (opts.compute_h && (H.empty() || H.m() != n || H.n() != n))
        return Status::InvalidArgument;
    if (opts.max_iter < 1)
        return Status::InvalidArgument;

    bool const ladder =
        prec::ladder_engaged(opts.precision.request, prec::native_prec<T>());
    try {
        if (opts.target == dev::Target::BatchedHost) {
            dev::ExecOptions eo;
            eo.target = dev::Target::BatchedHost;
            eo.max_batch = opts.max_batch;
            eo.model_streams = opts.model_streams;
            eo.tile_bytes = static_cast<std::size_t>(A.tile_mb(0))
                            * static_cast<std::size_t>(A.tile_nb(0))
                            * sizeof(T);
            dev::Executor ex(eng, eo);
            Status const s = ladder ? detail::qdwh_ladder_impl(ex, A, H, info, opts)
                                    : detail::qdwh_impl(ex, A, H, info, opts);
            auto const& bs = ex.batch_stats();
            info.tile_ops = bs.ops;
            info.engine_tasks = bs.tasks;
            info.coalescing = bs.coalescing();
            info.stream_h2d_bytes = ex.stream_stats().h2d_bytes;
            info.stream_overlap = ex.stream_stats().overlap_fraction();
            return s;
        }
        return ladder ? detail::qdwh_ladder_impl(eng, A, H, info, opts)
                      : detail::qdwh_impl(eng, A, H, info, opts);
    } catch (Error const&) {
        // A task-level numerical failure (e.g. a non-HPD Cholesky pivot)
        // surfaced at a synchronization point. Quiesce so the engine is
        // clean for the next job, then report instead of rethrowing.
        try {
            eng.wait();
        } catch (...) {
        }
        return Status::NumericalError;
    }
}

namespace detail {

/// Iteration workspaces for one scalar type. The ladder allocates a second
/// bundle in the shadow (float) type next to the native one; the plain path
/// allocates exactly what qdwh_impl always allocated.
template <typename T>
struct QdwhWorkspace {
    TiledMatrix<T> W;   ///< stacked [W1; W2], (m + n) x n
    TiledMatrix<T> Q;   ///< stacked [Q1; Q2]
    TiledMatrix<T> Tw;  ///< QR T factors of W
    TiledMatrix<T> Z;   ///< Cholesky operand, n x n

    QdwhWorkspace() = default;
    QdwhWorkspace(std::vector<int> const& row_sizes,
                  std::vector<int> const& col_sizes, Grid grid) {
        std::vector<int> w_rows = row_sizes;
        w_rows.insert(w_rows.end(), col_sizes.begin(), col_sizes.end());
        W = TiledMatrix<T>(w_rows, col_sizes, grid);
        Q = TiledMatrix<T>(w_rows, col_sizes, grid);
        Tw = la::alloc_qr_t(W);
        Z = TiledMatrix<T>(col_sizes, col_sizes, grid);
    }
    bool empty() const { return W.empty(); }
};

/// One QR-based iteration (Eq. 1, Algorithm 1 lines 30-36): reads cur,
/// writes A_k into oth; ws provides the stacked W/Q/T scratch. The weights
/// arrive in double (the planning precision) and are applied in R.
template <typename Ex, typename T>
void qdwh_qr_iter(Ex& eng, double a, double b, double c, TiledMatrix<T>& cur,
                  TiledMatrix<T>& oth, QdwhWorkspace<T>& ws, int mt, int nt,
                  bool structured, int lookahead) {
    using R = real_t<T>;
    TiledMatrix<T> W1 = ws.W.sub(0, 0, mt, nt);
    TiledMatrix<T> W2 = ws.W.sub(mt, 0, nt, nt);
    TiledMatrix<T> Q1 = ws.Q.sub(0, 0, mt, nt);
    TiledMatrix<T> Q2 = ws.Q.sub(mt, 0, nt, nt);
    la::copy(eng, cur, W1);
    la::scale(eng, from_real<T>(static_cast<R>(std::sqrt(c))), W1);
    R const theta = static_cast<R>((a - b / c) / std::sqrt(c));
    R const beta = static_cast<R>(b / c);
    if (structured) {
        la::geqrf_stacked_tri(eng, ws.W, mt, T(1), ws.Tw, lookahead);
        la::ungqr_stacked_tri(eng, ws.W, mt, ws.Tw, ws.Q);
        // Q2 = R^{-1} is block upper triangular; the out-of-place
        // triangular gemm writes A_k while A_{k-1} survives in cur.
        la::gemm_rt_upper(eng, from_real<T>(theta), Q1, Q2,
                          from_real<T>(beta), cur, oth);
    } else {
        la::set_identity(eng, W2);
        la::geqrf(eng, ws.W, ws.Tw, lookahead);
        la::ungqr(eng, ws.W, ws.Tw, ws.Q);
        la::copy(eng, cur, oth);
        la::gemm(eng, Op::NoTrans, Op::ConjTrans, from_real<T>(theta), Q1, Q2,
                 from_real<T>(beta), oth);
    }
}

/// One Cholesky-based iteration (Eq. 2, lines 38-44): reads cur, writes
/// A_k into oth. Throws tbp::Error (surfaced at a sync point) if the
/// Cholesky operand is not numerically HPD — the ladder's fallback trigger.
template <typename Ex, typename T>
void qdwh_chol_iter(Ex& eng, double a, double b, double c,
                    TiledMatrix<T>& cur, TiledMatrix<T>& oth,
                    QdwhWorkspace<T>& ws, int lookahead) {
    using R = real_t<T>;
    la::copy(eng, cur, oth);
    la::set_identity(eng, ws.Z);
    la::herk(eng, Uplo::Lower, Op::ConjTrans, static_cast<R>(c), cur, R(1),
             ws.Z);
    la::potrf(eng, Uplo::Lower, ws.Z, lookahead);
    la::trsm(eng, Side::Right, Uplo::Lower, Op::ConjTrans, Diag::NonUnit,
             T(1), ws.Z, oth);
    la::trsm(eng, Side::Right, Uplo::Lower, Op::NoTrans, Diag::NonUnit, T(1),
             ws.Z, oth);
    // A_k = (b/c) A_{k-1} + (a - b/c) A_{k-1} Z^{-1}
    la::add(eng, from_real<T>(static_cast<R>(b / c)), cur,
            from_real<T>(static_cast<R>(a - b / c)), oth);
}

/// H = U_p^H A0 (+ optional Hermitian symmetrization), Algorithm 1 line 52.
template <typename Ex, typename T>
void qdwh_h_stage(Ex& eng, TiledMatrix<T>& U, TiledMatrix<T>& Acpy,
                  TiledMatrix<T>& H, bool symmetrize) {
    la::gemm(eng, Op::ConjTrans, Op::NoTrans, T(1), U, Acpy, T(0), H);
    if (symmetrize) {
        TiledMatrix<T> Ht(H.row_tile_sizes(), H.col_tile_sizes(), H.grid());
        la::transpose_copy(eng, Op::ConjTrans, H, Ht);
        la::add(eng, T(0.5), Ht, T(0.5), H);
    }
}

/// Body of qdwh_status after validation; may throw tbp::Error from task
/// synchronization points (caught and mapped by qdwh_status). `Ex` is
/// rt::Engine (per-tile tasks) or dev::Executor (batched device path).
template <typename Ex, typename T>
Status qdwh_impl(Ex& eng, TiledMatrix<T> A, TiledMatrix<T> H, QdwhInfo& info,
                 QdwhOptions const& opts) {
    using R = real_t<T>;
    std::int64_t const n = A.n();
    double const flops0 = eng.flops_executed();

    R const eps = std::numeric_limits<R>::epsilon();
    R const tol1 = R(5) * eps;                // |L - 1| tolerance
    R const tol3 = std::cbrt(tol1);           // ||A_k - A_{k-1}||_F tolerance

    int const mt = A.mt();
    int const nt = A.nt();
    auto const row_sizes = A.row_tile_sizes();
    auto const col_sizes = A.col_tile_sizes();

    eng.wait();  // quiesce pending caller tasks: clone() reads tiles directly
    // Workspaces (Algorithm 1 lines 4-6). Aalt is the rotation partner of
    // A: each iteration writes A_k into whichever of the two buffers holds
    // A_{k-2}, so no per-iteration Aprev copy sweep is needed.
    TiledMatrix<T> Acpy = A.clone();  // backup of the *unscaled* A, for H
    TiledMatrix<T> Aalt(row_sizes, col_sizes, A.grid());
    QdwhWorkspace<T> ws(row_sizes, col_sizes, A.grid());
    TiledMatrix<T> W1 = ws.W.sub(0, 0, mt, nt);

    // --- Stage 1: two-norm estimate and scaling (lines 11-13) ------------
    R const alpha = cond::norm2est(eng, A);
    if (alpha == R(0)) {
        info.flops = eng.flops_executed() - flops0;
        return Status::ZeroMatrix;
    }
    info.norm2_estimate = static_cast<double>(alpha);
    la::scale(eng, from_real<T>(R(1) / alpha), A);

    // --- Stage 2: condition estimate (lines 14-19) -----------------------
    // The m x n QR runs in the already-allocated W1/Tw iteration
    // workspaces (the first QR iteration reinitializes them anyway)
    // instead of cloning a fresh matrix + T factor per call.
    R li;
    if (opts.condest_override > 0) {
        li = static_cast<R>(opts.condest_override);
    } else {
        R const anorm = la::norm(eng, Norm::One, A);
        la::copy(eng, A, W1);
        la::geqrf(eng, W1, ws.Tw.sub(0, 0, mt, nt), opts.lookahead);
        eng.wait();
        R const rcond = cond::trcondest(eng, W1);
        li = anorm * rcond / std::sqrt(static_cast<R>(n));
    }
    // Clamp into a sane open interval: an exact 0 (singular estimate) still
    // converges with the worst-case parameters; > 1 cannot happen for a
    // correctly scaled iterate but guards estimator overshoot.
    R const li_floor = std::numeric_limits<R>::min() * R(100);
    li = std::min(std::max(li, li_floor), R(1));
    info.condest_l0 = static_cast<double>(li);

    // --- Stage 3: main iteration (lines 21-50) ----------------------------
    // Per-precision measured-counter snapshot: every preceding charging op
    // (norm2est's gemvs, the condest QR) has synchronized, and the ops
    // still in flight (scale) charge nothing, so the deltas taken at the
    // end cover exactly the iteration loop + H stage.
    std::array<double, prec::kNumPrec> kf0{};
    for (int p = 0; p < prec::kNumPrec; ++p)
        kf0[static_cast<std::size_t>(p)] =
            blas::kernel::flops_performed(static_cast<prec::Prec>(p));
    R conv = R(100);
    // Buffer rotation: `cur` holds A_{k-1}, the iteration writes A_k into
    // `oth`, the convergence check reads both, then the roles swap.
    TiledMatrix<T>* cur = &A;
    TiledMatrix<T>* oth = &Aalt;

    while ((conv >= tol3 || std::abs(li - R(1)) >= tol1)
           && info.iterations < opts.max_iter) {
        // Dynamic weights (lines 23-27).
        R const l2 = li * li;
        R const dd = std::cbrt(R(4) * (R(1) - l2) / (l2 * l2));
        R const sqd = std::sqrt(R(1) + dd);
        R const a1 = sqd
                     + std::sqrt(R(8) - R(4) * dd
                                 + R(8) * (R(2) - l2) / (l2 * sqd))
                           / R(2);
        R const a = a1;
        R const b = (a - R(1)) * (a - R(1)) / R(4);
        R const c = a + b - R(1);
        li = li * (a + b * l2) / (R(1) + c * l2);
        info.li_history.push_back(static_cast<double>(li));

        if (c > R(100)) {
            // QR-based iteration, Eq. (1) (lines 30-36).
            qdwh_qr_iter(eng, static_cast<double>(a), static_cast<double>(b),
                         static_cast<double>(c), *cur, *oth, ws, mt, nt,
                         opts.structured_qr, opts.lookahead);
            ++info.it_qr;
        } else {
            // Cholesky-based iteration, Eq. (2) (lines 38-44). The solves
            // run on the rotation buffer so A_{k-1} stays intact in cur.
            qdwh_chol_iter(eng, static_cast<double>(a),
                           static_cast<double>(b), static_cast<double>(c),
                           *cur, *oth, ws, opts.lookahead);
            ++info.it_chol;
        }
        info.rungs.push_back(prec::native_prec<T>());

        // conv = ||A_k - A_{k-1}||_F (lines 47-48): one fused read-only
        // sweep over both buffers instead of add + destructive norm.
        // Synchronizes.
        conv = la::diff_norm_fro(eng, *oth, *cur);
        std::swap(cur, oth);
        ++info.iterations;
    }
    if (cur != &A)
        la::copy(eng, *cur, A);
    info.conv = static_cast<double>(conv);
    if (info.iterations >= opts.max_iter
        && (conv >= tol3 || std::abs(li - R(1)) >= tol1)) {
        eng.wait();
        info.flops = eng.flops_executed() - flops0;
        return Status::NotConverged;
    }
    info.converged = true;

    // --- Stage 4: H = U_p^H A (line 52) -----------------------------------
    if (opts.compute_h)
        qdwh_h_stage(eng, A, Acpy, H, opts.symmetrize_h);
    eng.wait();

    for (int p = 0; p < prec::kNumPrec; ++p)
        info.kernel_flops_by_prec[static_cast<std::size_t>(p)] =
            blas::kernel::flops_performed(static_cast<prec::Prec>(p))
            - kf0[static_cast<std::size_t>(p)];
    info.flops = eng.flops_executed() - flops0;
    return Status::Ok;
}

}  // namespace detail

// The precision-ladder driver (detail::qdwh_ladder_impl) lives in its own
// header but is an internal continuation of this one: it reuses the
// iteration bodies above and is dispatched from qdwh_status.
#include "core/qdwh_ladder.hh"  // IWYU pragma: keep

/// Polar decomposition A = U_p H by QDWH. A (m x n, m >= n) is overwritten
/// by U_p. If opts.compute_h, H must be n-by-n with A's column tile sizes.
/// Throws tbp::Error with a clear message on invalid dimensions, a zero
/// matrix, non-convergence, or a numerical failure; single-job callers keep
/// this interface, the batched service uses qdwh_status.
template <typename T>
QdwhInfo qdwh(rt::Engine& eng, TiledMatrix<T> A, TiledMatrix<T> H,
              QdwhOptions const& opts = {}) {
    QdwhInfo info;
    Status const s = qdwh_status(eng, A, H, info, opts);
    if (s != Status::Ok)
        detail::throw_status("qdwh", s,
                             A.empty() ? 0 : static_cast<long long>(A.m()),
                             A.empty() ? 0 : static_cast<long long>(A.n()),
                             opts.max_iter);
    return info;
}

}  // namespace tbp
