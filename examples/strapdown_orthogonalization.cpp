// Aerospace application (paper Section 1, ref. [5] Bar-Itzhack 1975):
// optimal orthogonalization of a strapdown attitude matrix.
//
// A strapdown inertial navigation system integrates gyro rates into a
// direction-cosine matrix. Numerical integration drift makes the matrix
// slowly lose orthogonality; the *optimal* (Frobenius-nearest) orthogonal
// repair is exactly the polar factor U_p of the drifted matrix. This example
// simulates an n-dimensional generalization (a bank of coupled sensor
// frames), drifts it with integration noise, re-orthogonalizes with QDWH,
// and shows that:
//   - the repaired matrix is orthogonal to machine precision, and
//   - it is closer to the true attitude than the drifted one.

#include <cstdio>

#include "core/qdwh.hh"
#include "gen/matgen.hh"
#include "ref/dense.hh"

using namespace tbp;

int main() {
    std::int64_t const n = 240;
    int const nb = 32;
    rt::Engine engine(4);

    // True attitude: a random orthogonal matrix.
    auto Q_true = gen::random_orthonormal<double>(engine, n, n, nb, 42);
    auto Qd = ref::to_dense(Q_true);

    // Simulated integration drift: Q_drift = Q (I + E) with small skew-ish
    // noise E — the matrix is no longer orthogonal.
    double const drift = 1e-3;
    auto E = ref::random_dense<double>(n, n, 43);
    auto Q_drift = Qd;
    for (std::int64_t j = 0; j < n; ++j)
        for (std::int64_t i = 0; i < n; ++i) {
            double acc = 0;
            for (std::int64_t k = 0; k < n; ++k)
                acc += Qd(i, k) * E(k, j);
            Q_drift(i, j) += drift * acc / std::sqrt(static_cast<double>(n));
        }

    double const orth_before =
        ref::orthogonality(Q_drift) / std::sqrt(static_cast<double>(n));
    double const dist_before = ref::diff_fro(Q_drift, Qd);

    // Optimal orthogonalization = polar factor of the drifted matrix.
    auto A = ref::to_tiled(Q_drift, nb);
    TiledMatrix<double> H(n, n, nb);
    QdwhOptions opts;
    auto info = qdwh(engine, A, H, opts);
    auto Q_fixed = ref::to_dense(A);

    double const orth_after =
        ref::orthogonality(Q_fixed) / std::sqrt(static_cast<double>(n));
    double const dist_after = ref::diff_fro(Q_fixed, Qd);

    std::printf("strapdown attitude re-orthogonalization (n = %lld)\n",
                static_cast<long long>(n));
    std::printf("  orthogonality error before : %.3e\n", orth_before);
    std::printf("  orthogonality error after  : %.3e\n", orth_after);
    std::printf("  distance to true attitude  : %.3e -> %.3e\n", dist_before,
                dist_after);
    std::printf("  QDWH iterations            : %d (%d QR + %d Cholesky)\n",
                info.iterations, info.it_qr, info.it_chol);
    std::printf("(a nearly-orthogonal input converges in ~2 Cholesky "
                "iterations — the paper's well-conditioned case)\n");
    return 0;
}
