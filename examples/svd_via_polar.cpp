// SVD through the polar decomposition (paper Sections 1 and 3, the
// Higham–Papadimitriou framework):
//
//   A = U_p H  (QDWH),   H = V Lambda V^H  (Hermitian EVD)
//   =>  A = (U_p V) Lambda V^H = U Sigma V^H.
//
// This is the route the paper positions QDWH as a pre-processing step for:
// the expensive O(n^3) iterations are all communication-friendly QDWH
// kernels, and only the (structured, PSD) H reaches the eigensolver.

#include <cstdio>

#include "core/qdwh_svd.hh"
#include "gen/matgen.hh"
#include "ref/dense.hh"

using namespace tbp;

int main() {
    std::int64_t const m = 500, n = 120;
    int const nb = 32;
    rt::Engine engine(4);

    // Test matrix with known singular values (geometric, kappa = 1e10).
    gen::MatGenOptions opt;
    opt.cond = 1e10;
    opt.seed = 11;
    auto A = gen::cond_matrix<double>(engine, m, n, nb, opt);
    auto Ad = ref::to_dense(A);
    auto sigma_true = gen::sigma_values<double>(n, opt);

    auto svd = qdwh_svd(engine, A, {});

    // Largest relative error over the leading singular values.
    double worst = 0;
    for (int i = 0; i < 10; ++i) {
        double const rel = std::abs(svd.sigma[static_cast<size_t>(i)]
                                    - sigma_true[static_cast<size_t>(i)])
                           / sigma_true[static_cast<size_t>(i)];
        worst = std::max(worst, rel);
    }

    // Reconstruction residual ||A - U Sigma V^H|| / ||A||.
    auto Us = svd.U;
    for (std::int64_t j = 0; j < n; ++j)
        for (std::int64_t i = 0; i < m; ++i)
            Us(i, j) *= svd.sigma[static_cast<size_t>(j)];
    auto R = ref::gemm(Op::NoTrans, Op::ConjTrans, 1.0, Us, svd.V);
    double const resid = ref::diff_fro(R, Ad) / ref::norm_fro(Ad);

    std::printf("SVD via polar decomposition (%lld x %lld, kappa = 1e10)\n",
                static_cast<long long>(m), static_cast<long long>(n));
    std::printf("  QDWH iterations                  : %d (%d QR + %d Chol)\n",
                svd.polar_info.iterations, svd.polar_info.it_qr,
                svd.polar_info.it_chol);
    std::printf("  sigma_1 (true 1.0)               : %.12f\n", svd.sigma[0]);
    std::printf("  max rel. error, 10 leading sigma : %.3e\n", worst);
    std::printf("  ||A - U S V'||/||A||             : %.3e\n", resid);
    std::printf("  ||I - U'U||_F                    : %.3e\n",
                ref::orthogonality(svd.U));
    std::printf("  ||I - V'V||_F                    : %.3e\n",
                ref::orthogonality(svd.V));
    return 0;
}
