// Partial-spectrum extraction via the polar decomposition — the
// "light-weight polar decomposition" application of the paper's
// introduction (refs [26], [36]: extracting the most significant
// eigen/singular pairs, e.g. for extreme adaptive optics).
//
// We build a Hermitian "covariance" matrix whose spectrum has a handful of
// strong modes above a noise floor, then use one QDWH polar step to obtain
// the spectral projector above a threshold and extract an orthonormal basis
// of the dominant invariant subspace — without ever computing the full
// eigendecomposition.

#include <cstdio>

#include "core/subspace.hh"
#include "gen/matgen.hh"
#include "ref/dense.hh"
#include "ref/jacobi.hh"

using namespace tbp;

int main() {
    int const n = 160, nb = 32;
    int const n_strong = 12;       // strong modes
    double const noise_ceil = 0.5; // noise eigenvalues below this
    double const threshold = 1.0;  // slice point
    rt::Engine engine(4);

    // Spectrum: n_strong modes in [2, 8], the rest in (0, noise_ceil).
    std::vector<double> lam(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        if (i >= n - n_strong)
            lam[static_cast<size_t>(i)] =
                2.0 + 6.0 * (i - (n - n_strong)) / double(n_strong - 1);
        else
            lam[static_cast<size_t>(i)] = noise_ceil * (i + 1) / double(n);
    }
    auto Q = gen::random_orthonormal<double>(engine, n, n, nb, 21);
    auto Qd = ref::to_dense(Q);
    auto QL = Qd;
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i)
            QL(i, j) *= lam[static_cast<size_t>(j)];
    auto Cd = ref::gemm(Op::NoTrans, Op::ConjTrans, 1.0, QL, Qd);
    auto C = ref::to_tiled(Cd, nb);

    // One polar step -> spectral projector above `threshold` -> basis.
    auto res = qdwh_subspace<double>(engine, C, threshold);

    std::printf("spectrum slicing on a %d x %d Hermitian matrix\n", n, n);
    std::printf("  strong modes planted     : %d (eigenvalues in [2, 8])\n",
                n_strong);
    std::printf("  slice threshold          : %.2f\n", threshold);
    std::printf("  subspace dimension found : %lld\n",
                static_cast<long long>(res.dim));
    std::printf("  QDWH iterations          : %d\n",
                res.polar_info.iterations);

    // Quality: the basis must capture all strong energy of C.
    auto B = ref::to_dense(res.basis);
    std::printf("  basis orthogonality      : %.3e\n", ref::orthogonality(B));
    // Rayleigh-Ritz eigenvalues on the subspace = the strong modes.
    auto CB = ref::gemm(Op::NoTrans, Op::NoTrans, 1.0, Cd, B);
    auto S = ref::gemm(Op::ConjTrans, Op::NoTrans, 1.0, B, CB);
    std::vector<double> mu;
    ref::Dense<double> V;
    ref::jacobi_eig(S, mu, V);
    std::printf("  recovered mode range     : [%.4f, %.4f] (planted [2, 8])\n",
                mu.front(), mu.back());
    std::printf("(cost: one polar decomposition + a k-column QR — no full "
                "eigendecomposition)\n");
    return 0;
}
