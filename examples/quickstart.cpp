// Quickstart: compute a polar decomposition A = U_p H with TBP.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The three ingredients:
//   1. an Engine — the task runtime (TaskDataflow = SLATE-style asynchronous
//      execution; ForkJoin = ScaLAPACK-style bulk-synchronous);
//   2. a TiledMatrix — your data, tiled for the task scheduler;
//   3. qdwh() — Algorithm 1 of the paper: A is overwritten by the
//      orthogonal factor U_p, H receives the Hermitian PSD factor.

#include <cstdio>

#include "core/qdwh.hh"
#include "gen/matgen.hh"
#include "ref/dense.hh"

using namespace tbp;

int main() {
    std::int64_t const n = 300;
    int const nb = 32;  // tile size (paper: 320 on GPUs, 192 on CPUs)

    // 1. Task runtime.
    rt::Engine engine(4, rt::Mode::TaskDataflow);

    // 2. An ill-conditioned test matrix A = U Sigma V^H (paper Section 7.1).
    gen::MatGenOptions opt;
    opt.cond = 1e12;
    opt.seed = 1;
    TiledMatrix<double> A = gen::cond_matrix<double>(engine, n, n, nb, opt);
    auto A_original = ref::to_dense(A);  // keep a copy for verification

    // 3. Polar decomposition: A := U_p, H := sqrt(A^H A).
    TiledMatrix<double> H(n, n, nb);
    QdwhInfo info = qdwh(engine, A, H);

    std::printf("QDWH polar decomposition of a %lld x %lld matrix\n",
                static_cast<long long>(n), static_cast<long long>(n));
    std::printf("  iterations        : %d  (%d QR-based + %d Cholesky-based)\n",
                info.iterations, info.it_qr, info.it_chol);
    std::printf("  ||A||_2 estimate  : %.6f\n", info.norm2_estimate);
    std::printf("  flops executed    : %.3e\n", info.flops);

    // Verify the paper's two accuracy metrics.
    auto U = ref::to_dense(A);
    auto Hd = ref::to_dense(H);
    double const orth =
        ref::orthogonality(U) / std::sqrt(static_cast<double>(n));
    auto UH = ref::gemm(Op::NoTrans, Op::NoTrans, 1.0, U, Hd);
    double const backward =
        ref::diff_fro(UH, A_original) / ref::norm_fro(A_original);
    std::printf("  ||I - U'U||_F/sqrt(n) : %.3e\n", orth);
    std::printf("  ||A - U H||_F/||A||_F : %.3e\n", backward);
    std::printf("(both should be near machine epsilon ~ 1e-16)\n");
    return 0;
}
