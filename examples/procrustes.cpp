// Orthogonal Procrustes problem (paper Section 1, ref. [35] Schönemann
// 1966 — the factor-analysis application of the polar decomposition).
//
// Given two observation matrices X, Y in R^{N x d} related by an unknown
// orthogonal transform Omega plus noise (Y ~ X Omega + noise), the
// least-squares orthogonal aligner
//
//   Omega* = argmin_{Q^T Q = I} ||X Q - Y||_F
//
// is the polar factor of M = X^H Y. This example aligns two synthetic
// d-dimensional embedding spaces and reports the alignment residual.

#include <cstdio>

#include "core/qdwh.hh"
#include "gen/matgen.hh"
#include "linalg/gemm.hh"
#include "ref/dense.hh"

using namespace tbp;

int main() {
    std::int64_t const N = 2000;  // observations
    std::int64_t const d = 96;    // embedding dimension
    int const nb = 32;
    rt::Engine engine(4);

    // Ground-truth orthogonal transform and data.
    auto Omega_true = gen::random_orthonormal<double>(engine, d, d, nb, 7);
    auto Ot = ref::to_dense(Omega_true);
    auto X = ref::random_dense<double>(N, d, 8);

    // Y = X Omega + noise.
    auto Y = ref::gemm(Op::NoTrans, Op::NoTrans, 1.0, X, Ot);
    auto noise = ref::random_dense<double>(N, d, 9);
    for (std::int64_t j = 0; j < d; ++j)
        for (std::int64_t i = 0; i < N; ++i)
            Y(i, j) += 1e-2 * noise(i, j);

    // M = X^H Y (d x d), via the tiled task-parallel gemm.
    auto Xt = ref::to_tiled(X, nb);
    auto Yt = ref::to_tiled(Y, nb);
    TiledMatrix<double> M(d, d, nb);
    la::gemm(engine, Op::ConjTrans, Op::NoTrans, 1.0, Xt, Yt, 0.0, M);
    engine.wait();

    // Omega* = polar factor of M.
    TiledMatrix<double> H(d, d, nb);
    auto info = qdwh(engine, M, H);
    auto Omega = ref::to_dense(M);

    // Report: residual with the estimated aligner vs truth vs identity.
    auto residual = [&](ref::Dense<double> const& Q) {
        auto XQ = ref::gemm(Op::NoTrans, Op::NoTrans, 1.0, X, Q);
        return ref::diff_fro(XQ, Y) / ref::norm_fro(Y);
    };
    std::printf("orthogonal Procrustes alignment (N = %lld points, d = %lld)\n",
                static_cast<long long>(N), static_cast<long long>(d));
    std::printf("  ||X Q - Y||/||Y||  with Q = Omega*   : %.4e\n",
                residual(Omega));
    std::printf("  ||X Q - Y||/||Y||  with Q = truth    : %.4e\n",
                residual(Ot));
    std::printf("  ||X Q - Y||/||Y||  with Q = identity : %.4e\n",
                residual(ref::identity<double>(d)));
    std::printf("  ||Omega* - truth||_F                 : %.4e\n",
                ref::diff_fro(Omega, Ot));
    std::printf("  QDWH iterations: %d\n", info.iterations);
    std::printf("(the estimated aligner matches the oracle residual — the "
                "polar factor is the optimal orthogonal alignment)\n");
    return 0;
}
